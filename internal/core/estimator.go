package core

import (
	"fmt"
	"math"
	"strings"
	"time"

	"bytecard/internal/engine"
	"bytecard/internal/expr"
	"bytecard/internal/factorjoin"
	"bytecard/internal/obs"
	"bytecard/internal/par"
	"bytecard/internal/residual"
	"bytecard/internal/sample"
	"bytecard/internal/types"
)

// Estimator is ByteCard's cardinality estimator: Bayesian networks for
// single-table COUNT, FactorJoin for join sizes (fed by the BNs' filtered
// per-bucket key counts), and RBX over per-table sample frames for group
// NDV. Whenever a needed model is missing, disabled by the Model Monitor,
// or fails, the estimate transparently falls back to the configured
// traditional estimator — the reliability contract the paper's deployment
// depends on.
//
// Every model call is observable: Metrics accumulates counters and latency
// /q-error histograms across all views of the estimator, and WithTrace
// derives a view that additionally records a per-query obs.Trace — which
// model answered, guard outcomes, breaker verdicts, cache hits, and
// nanosecond timings.
type Estimator struct {
	Infer *InferenceEngine
	// Fallback is the traditional estimator (typically sketch-based).
	Fallback engine.CardEstimator
	// Guard wraps every model call with panic recovery, the latency
	// budget, and estimate sanitization.
	Guard *Guard
	// Samples holds per-table sample frames for RBX featurization (the
	// Model Loader's in-memory DataFrames).
	Samples map[string]*sample.Frame
	// JoinMode selects FactorJoin's estimate or bound output.
	JoinMode factorjoin.Mode
	// Metrics is the shared observability block (never nil from
	// NewEstimator; shared by traced and strict views).
	Metrics *obs.EstimatorMetrics
	// Residual, when non-nil, multiplies final (whole-target) filter and
	// join estimates by a correction learned online from executed truth
	// (see internal/residual). Nil leaves every code path byte-identical
	// to an estimator without the corrector — the feature-flag guarantee.
	// Shared by traced and strict views, like Metrics.
	Residual *residual.Corrector

	// vec memoizes the optimizer's per (table instance, key column)
	// filtered bucket vectors so join planning stays O(tables) BN
	// inferences instead of O(2^tables).
	vec *vecCache
	// trace, when non-nil, collects per-call spans (see WithTrace).
	trace *obs.Trace
}

type vecKey struct {
	table *engine.QueryTable
	col   string
}

// NewEstimator wires an estimator to a loaded inference engine.
func NewEstimator(infer *InferenceEngine, fallback engine.CardEstimator) *Estimator {
	m := obs.NewEstimatorMetrics()
	est := &Estimator{
		Infer:    infer,
		Fallback: fallback,
		Guard:    NewGuard(GuardConfig{}),
		Samples:  map[string]*sample.Frame{},
		Metrics:  m,
		vec:      newVecCache(vecCacheLimit, m),
	}
	// The vector/subset cache derives everything from loaded model state,
	// so the registry invalidates it on every model load/enable/disable.
	infer.RegisterCache("joinvec", est.vec)
	return est
}

// WithTrace returns a view of the estimator that records every model call,
// fallback, and cache hit into tr. The view shares the registry, guard,
// metrics, and vector cache with the original, so traced traffic feeds the
// same breakers and counters as untraced traffic; the original estimator
// stays trace-free and safe for concurrent queries.
func (e *Estimator) WithTrace(tr *obs.Trace) engine.CardEstimator {
	return e.traced(tr)
}

func (e *Estimator) traced(tr *obs.Trace) *Estimator {
	view := *e
	view.trace = tr
	return &view
}

// span records one trace step, skipping all work when tracing is off.
func (e *Estimator) span(s obs.Span) {
	if e.trace == nil {
		return
	}
	e.trace.Add(s)
}

// fallbackSpan records a fallback step and counts its source.
func (e *Estimator) fallbackSpan(op string, tables []string, cause error, value float64, start time.Time) {
	e.Metrics.Sources.Add(e.Fallback.Name(), 1)
	if e.trace == nil {
		return
	}
	s := obs.Span{
		Op:       op,
		Tables:   tables,
		Source:   e.Fallback.Name(),
		Outcome:  obs.OutcomeOK,
		Fallback: true,
		Value:    value,
		Duration: time.Since(start),
	}
	if cause != nil {
		s.Err = cause.Error()
	}
	e.trace.Add(s)
}

// sourceOfKey maps a model key to its trace source name.
func sourceOfKey(key string) string {
	if i := strings.IndexByte(key, ':'); i >= 0 {
		return key[:i]
	}
	return key
}

// guarded runs one model call through the full degradation ladder: breaker
// admission (rung 2), the guard's panic recovery / latency budget /
// sanitization into [lo, hi] (rung 1), and breaker accounting. Any error
// means the caller must fall back to the traditional estimator. Every
// attempt lands in the metrics block and, on traced views, in the trace.
func (e *Estimator) guarded(op string, tables []string, key string, lo, hi float64, fn func() (float64, error)) (float64, error) {
	start := time.Now()
	e.Metrics.ModelCalls.Add(1)
	if !e.Infer.Allow(key) {
		outcome := obs.OutcomeBreakerOpen
		if e.Infer.Disabled(key) {
			outcome = obs.OutcomeDisabled
		}
		err := &ModelError{Key: key, Outcome: outcome, Msg: fmt.Sprintf("core: %s unavailable (breaker open or disabled)", key)}
		e.Metrics.ModelFailures.Add(1)
		e.span(obs.Span{Op: op, Tables: tables, Key: key, Source: sourceOfKey(key), Outcome: outcome, Err: err.Msg, Duration: time.Since(start)})
		return 0, err
	}
	raw, err := e.Guard.Do(key, fn)
	// v only ever holds sanitized values (the raw model output is passed to
	// Sanitize and discarded), so every return below is in [lo, hi].
	var v float64
	outcome := obs.OutcomeOK
	if err == nil {
		v, err = e.Guard.Sanitize(key, raw, lo, hi)
		if err == nil && v != raw {
			outcome = obs.OutcomeClamped
		}
	}
	if err != nil {
		e.Infer.RecordFailure(key)
		e.Metrics.ModelFailures.Add(1)
		e.span(obs.Span{Op: op, Tables: tables, Key: key, Source: sourceOfKey(key), Outcome: OutcomeOf(err), Err: err.Error(), Duration: time.Since(start)})
		return 0, err
	}
	e.Infer.RecordSuccess(key)
	dur := time.Since(start)
	e.Metrics.ModelLatency.Observe(float64(dur.Nanoseconds()))
	e.Metrics.Sources.Add(sourceOfKey(key), 1)
	e.span(obs.Span{Op: op, Tables: tables, Key: key, Source: sourceOfKey(key), Outcome: outcome, Value: v, Duration: dur})
	return v, nil
}

// The planner batches its DP ranks through ByteCard (and its traced
// views — WithTrace returns the same concrete type).
var _ engine.BatchCardEstimator = (*Estimator)(nil)

// Name implements engine.CardEstimator.
func (e *Estimator) Name() string { return "bytecard" }

// Calls returns the total number of estimate requests served.
func (e *Estimator) Calls() int64 { return e.Metrics.Calls.Load() }

// Fallbacks returns how many requests fell back to the traditional path.
func (e *Estimator) Fallbacks() int64 { return e.Metrics.Fallbacks.Load() }

// CacheLen returns the resident join-vector cache size.
func (e *Estimator) CacheLen() int { return e.vec.len() }

func encoderFor(t *engine.QueryTable) expr.Encoder {
	return func(col string, d types.Datum) (float64, bool) {
		c := t.Table.ColByName(col)
		if c == nil {
			return d.AsFloat(), false
		}
		return c.EncodeDatum(d)
	}
}

// filterSelectivity evaluates a filter tree over the table's shard
// contexts, weighting shards by their population. The BN inference runs
// under the guard; the result is a sanitized selectivity in [0, 1].
func (e *Estimator) filterSelectivity(t *engine.QueryTable) (float64, error) {
	ctxs, ok := e.Infer.BNContexts(t.Name)
	if !ok {
		return 0, &ModelError{Key: "bn:" + t.Name, Outcome: obs.OutcomeMissing, Msg: fmt.Sprintf("core: no BN for table %s", t.Name)}
	}
	return e.guarded(obs.OpFilter, []string{t.Binding}, "bn:"+t.Name, 0, 1, func() (float64, error) {
		enc := encoderFor(t)
		var rows, matched float64
		for _, ctx := range ctxs {
			sel, err := ctx.SelectivityNode(t.Filter, enc)
			if err != nil {
				return 0, err
			}
			rows += ctx.Model().Rows
			matched += ctx.Model().Rows * sel
		}
		if rows == 0 {
			return 0, fmt.Errorf("core: BN for %s has zero population", t.Name)
		}
		return matched / rows, nil
	})
}

// EstimateFilter implements engine.CardEstimator.
func (e *Estimator) EstimateFilter(t *engine.QueryTable) float64 {
	e.Metrics.Calls.Add(1)
	start := time.Now()
	sel, err := e.filterSelectivity(t)
	if err != nil {
		e.Metrics.Fallbacks.Add(1)
		v := e.Fallback.EstimateFilter(t)
		e.fallbackSpan(obs.OpFilter, []string{t.Binding}, err, v, start)
		return v
	}
	rows := math.Max(1, float64(t.Table.NumRows()))
	est := math.Max(1, sel*float64(t.Table.NumRows()))
	if e.Residual == nil {
		return est
	}
	return e.correctFinal(obs.OpFilter, []*engine.QueryTable{t}, nil, est, 1, rows)
}

// EstimateConj implements engine.CardEstimator (the column-order input).
func (e *Estimator) EstimateConj(t *engine.QueryTable, preds []expr.Pred) float64 {
	e.Metrics.Calls.Add(1)
	start := time.Now()
	ctxs, ok := e.Infer.BNContexts(t.Name)
	if !ok {
		e.Metrics.Fallbacks.Add(1)
		v := e.Fallback.EstimateConj(t, preds)
		e.fallbackSpan(obs.OpConj, []string{t.Binding}, &ModelError{Key: "bn:" + t.Name, Outcome: obs.OutcomeMissing, Msg: "core: no BN for table " + t.Name}, v, start)
		return v
	}
	sel, err := e.guarded(obs.OpConj, []string{t.Binding}, "bn:"+t.Name, 0, 1, func() (float64, error) {
		constraints := expr.BuildConstraints(preds, encoderFor(t))
		var rows, matched float64
		for _, ctx := range ctxs {
			s, err := ctx.SelectivityConj(constraints)
			if err != nil {
				return 0, err
			}
			rows += ctx.Model().Rows
			matched += ctx.Model().Rows * s
		}
		if rows == 0 {
			return 0, fmt.Errorf("core: BN for %s has zero population", t.Name)
		}
		return matched / rows, nil
	})
	if err != nil {
		e.Metrics.Fallbacks.Add(1)
		v := e.Fallback.EstimateConj(t, preds)
		e.fallbackSpan(obs.OpConj, []string{t.Binding}, err, v, start)
		return v
	}
	return sel
}

// jointVector returns the filtered per-bucket count vector of keyCol under
// the table's filter tree, applying inclusion–exclusion for OR filters and
// summing across shard models.
func (e *Estimator) jointVector(t *engine.QueryTable, keyCol string, buckets int) ([]float64, error) {
	ctxs, ok := e.Infer.BNContexts(t.Name)
	if !ok {
		return nil, &ModelError{Key: "bn:" + t.Name, Outcome: obs.OutcomeMissing, Msg: fmt.Sprintf("core: no BN for table %s", t.Name)}
	}
	enc := encoderFor(t)
	terms := []expr.IETerm{{Sign: 1}}
	if t.Filter != nil {
		var err error
		terms, err = t.Filter.InclusionExclusion()
		if err != nil {
			return nil, err
		}
	}
	scale := float64(t.Table.NumRows())
	var popRows float64
	for _, ctx := range ctxs {
		popRows += ctx.Model().Rows
	}
	if popRows == 0 {
		return nil, fmt.Errorf("core: BN for %s has zero population", t.Name)
	}
	out := make([]float64, buckets)
	for _, ctx := range ctxs {
		weight := ctx.Model().Rows / popRows * scale
		for _, term := range terms {
			vec, err := ctx.JointWithColumn(expr.BuildConstraints(term.Preds, enc), keyCol)
			if err != nil {
				return nil, err
			}
			if len(vec) != buckets {
				return nil, fmt.Errorf("core: BN key %s.%s has %d bins, buckets want %d", t.Name, keyCol, len(vec), buckets)
			}
			for b, v := range vec {
				out[b] += term.Sign * weight * v
			}
		}
	}
	for b := range out {
		if out[b] < 0 {
			out[b] = 0
		}
	}
	return out, nil
}

func bindings(tables []*engine.QueryTable) []string {
	out := make([]string, len(tables))
	for i, t := range tables {
		out[i] = t.Binding
	}
	return out
}

// joinModelCall builds the FactorJoin invocation for one table subset: the
// closure the guard runs and the sanitizer's upper bound (the Cartesian
// product of the joined relations — an inner join can never exceed it).
// The closure copies nothing from tables/joins lazily, so the caller's
// slices may be reused once it has been built. memo, when non-nil, shares
// factor-graph sub-computations (leaf messages, NDV vectors, conditional
// matrices, domains) across every call built with it — the batch path's
// one-pass-per-factor amortization; results are bit-identical either way.
func (e *Estimator) joinModelCall(fj *factorjoin.Model, tables []*engine.QueryTable, joins []engine.JoinCond, memo *factorjoin.Memo) (fn func() (float64, error), upper float64) {
	byBinding := map[string]*engine.QueryTable{}
	fjTables := make([]factorjoin.QueryTable, len(tables))
	for i, t := range tables {
		fjTables[i] = factorjoin.QueryTable{Binding: t.Binding, Name: t.Name}
		byBinding[t.Binding] = t
	}
	conds := make([]factorjoin.Cond, len(joins))
	for i, j := range joins {
		conds[i] = factorjoin.Cond{LBind: j.LeftTab, LCol: j.LeftCol, RBind: j.RightTab, RCol: j.RightCol}
	}
	src := func(binding, table, column string, bounds []float64) ([]float64, error) {
		t := byBinding[binding]
		key := vecKey{table: t, col: column}
		if vec, ok := e.vec.get(key); ok {
			e.span(obs.Span{Op: obs.OpVector, Tables: []string{binding}, Key: "bn:" + t.Name, Source: "bn", Outcome: obs.OutcomeOK, CacheHit: true})
			return vec, nil
		}
		vecStart := time.Now()
		vec, err := e.jointVector(t, column, len(bounds)-1)
		if err != nil {
			return nil, err
		}
		if e.JoinMode == factorjoin.ModeEstimate {
			// Sub-half-row bucket mass is smoothing noise, but a
			// high-fanout bucket amplifies it by orders of magnitude;
			// floor it (bound mode keeps every epsilon to stay sound).
			for b, v := range vec {
				if v < 0.5 {
					vec[b] = 0
				}
			}
		}
		e.vec.put(key, vec)
		e.span(obs.Span{Op: obs.OpVector, Tables: []string{binding}, Key: "bn:" + t.Name, Source: "bn", Outcome: obs.OutcomeOK, Duration: time.Since(vecStart)})
		return vec, nil
	}
	return func() (float64, error) {
		return fj.EstimateWithMemo(fjTables, conds, src, e.JoinMode, memo)
	}, cartesianUpper(tables)
}

// EstimateJoin implements engine.CardEstimator via FactorJoin inference
// over BN-conditioned bucket counts.
func (e *Estimator) EstimateJoin(tables []*engine.QueryTable, joins []engine.JoinCond) float64 {
	e.Metrics.Calls.Add(1)
	start := time.Now()
	fj := e.Infer.FactorJoin()
	if fj == nil {
		e.Metrics.Fallbacks.Add(1)
		v := e.Fallback.EstimateJoin(tables, joins)
		e.fallbackSpan(obs.OpJoin, bindings(tables), &ModelError{Key: "factorjoin", Outcome: obs.OutcomeMissing, Msg: "core: no FactorJoin model loaded"}, v, start)
		return v
	}
	fn, upper := e.joinModelCall(fj, tables, joins, nil)
	est, err := e.guarded(obs.OpJoin, bindings(tables), "factorjoin", 1, upper, fn)
	if err != nil {
		e.Metrics.Fallbacks.Add(1)
		v := e.Fallback.EstimateJoin(tables, joins)
		e.fallbackSpan(obs.OpJoin, bindings(tables), err, v, start)
		return v
	}
	if e.Residual == nil {
		return est
	}
	return e.correctFinal(obs.OpJoin, tables, joins, est, 1, upper)
}

// correctFinal multiplies a sanitized model estimate by the residual
// corrector's learned factor for the target's template, re-clamped into
// the same [lo, hi] the guard enforced. Only final (whole-target) model
// estimates flow through here — fallback values stay uncorrected (the
// corrector learns the models' residuals, not the sketch's), and strict
// paths (countSingle, which feeds Monitor probes and featurization) stay
// raw so the Monitor measures the models themselves.
func (e *Estimator) correctFinal(op string, tables []*engine.QueryTable, joins []engine.JoinCond, est, lo, hi float64) float64 {
	key := engine.TemplateKey(tables, joins)
	v, factor := e.Residual.Correct(key, est)
	if factor != 1 && e.trace != nil {
		e.trace.Add(obs.Span{
			Op: obs.OpResidual, Tables: bindings(tables), Key: "residual",
			Source: "residual", Outcome: obs.OutcomeOK, Value: v,
		})
	}
	return clampEst(v, lo, hi)
}

// cartesianUpper is the sanitizer's join-size upper bound: the Cartesian
// product of the joined relations — an inner join can never exceed it.
func cartesianUpper(tables []*engine.QueryTable) float64 {
	upper := 1.0
	for _, t := range tables {
		upper *= math.Max(float64(t.Table.NumRows()), 1)
	}
	return upper
}

// fanOutWorkers decides how many workers a batch of n guarded model
// calls is spread across: the requested parallelism clamped to the
// machine's effective parallelism (a 4-worker fan-out on a 1-CPU box is
// pure scheduling overhead — the regression the PR 4 bench caught), then
// degraded to the serial loop when the measured fan-out cost cannot be
// recovered: fanning out saves at most n·mean·(1−1/w) of model-call wall
// time and costs one par.Overhead. Worker count never affects values —
// items are independent and every result is deterministic — so this is a
// pure wall-clock decision.
func (e *Estimator) fanOutWorkers(n, requested int) int {
	w := par.Effective(requested)
	if w <= 1 || n <= 1 {
		return 1
	}
	mean := e.Metrics.ModelLatency.Mean()
	if mean <= 0 {
		return w // no latency history yet: only the machine clamp gates
	}
	saved := float64(n) * mean * (1 - 1/float64(w))
	if saved < float64(par.Overhead().Nanoseconds()) {
		return 1
	}
	return w
}

// EstimateJoinBatch implements engine.BatchCardEstimator: one DP rank of
// join subsets estimated under a single breaker admission and a single
// trace span (with per-item Sources). The batch makes one pass over each
// model's factors instead of one per item: items whose canonical subset
// key is memoized in the vector cache are answered without touching the
// model at all (the memo persists across ranks and across Plan calls),
// and the remaining items share one factorjoin.Memo so every leaf
// message, effective-NDV vector, conditional matrix, and domain vector is
// computed once per batch. Model calls are fanned across at most
// parallelism workers when the measured break-even says fanning out pays
// (see fanOutWorkers). Each computed item runs the same guard rungs as a
// sequential EstimateJoin — panic recovery, latency budget, sanitization
// into [1, cartesian-product] — and items that fail take the traditional
// estimator's value, so the batch result is element-wise identical to
// sequential calls. Fallback calls and breaker accounting run serially
// after the fan-out: engine.CardEstimator implementations are not promised
// to be concurrency-safe.
func (e *Estimator) EstimateJoinBatch(items []engine.JoinBatchItem, parallelism int) []float64 {
	out := make([]float64, len(items))
	if len(items) == 0 {
		return out
	}
	start := time.Now()
	e.Metrics.Calls.Add(int64(len(items)))
	sources := make([]string, len(items))
	hits := 0
	batchSpan := func(outcome, errMsg string) {
		if e.trace == nil {
			return
		}
		e.trace.Add(obs.Span{
			Op:       obs.OpJoinBatch,
			Key:      "factorjoin",
			Source:   "factorjoin",
			Outcome:  outcome,
			CacheHit: hits == len(items),
			Workers:  parallelism,
			Sources:  sources,
			Value:    float64(len(items)),
			Err:      errMsg,
			Duration: time.Since(start),
		})
	}
	fallbackAll := func(cause *ModelError) []float64 {
		e.Metrics.ModelCalls.Add(int64(len(items)))
		e.Metrics.ModelFailures.Add(int64(len(items)))
		e.Metrics.Fallbacks.Add(int64(len(items)))
		for k, it := range items {
			out[k] = e.Fallback.EstimateJoin(it.Tables, it.Conds)
			sources[k] = e.Fallback.Name()
			e.Metrics.Sources.Add(e.Fallback.Name(), 1)
		}
		batchSpan(cause.Outcome, cause.Msg)
		return out
	}
	fj := e.Infer.FactorJoin()
	if fj == nil {
		return fallbackAll(&ModelError{Key: "factorjoin", Outcome: obs.OutcomeMissing, Msg: "core: no FactorJoin model loaded"})
	}
	if !e.Infer.Allow("factorjoin") {
		outcome := obs.OutcomeBreakerOpen
		if e.Infer.Disabled("factorjoin") {
			outcome = obs.OutcomeDisabled
		}
		return fallbackAll(&ModelError{Key: "factorjoin", Outcome: outcome, Msg: "core: factorjoin unavailable (breaker open or disabled)"})
	}
	// Resolve keyed items from the subset memo first: the cached value is
	// the sanitized estimate a fresh model call would return (determinism
	// makes the replay byte-identical), so hits skip the guard and the
	// model entirely.
	need := make([]int, 0, len(items))
	for k := range items {
		if key := items[k].Key; key != "" {
			if v, ok := e.vec.getSubset(key); ok {
				// The memo holds uncorrected sanitized estimates (published
				// below, pre-correction), so hits and computed items apply
				// the same residual correction and stay byte-identical to
				// sequential EstimateJoin calls.
				if e.Residual != nil {
					v = e.correctFinal(obs.OpJoinBatch, items[k].Tables, items[k].Conds, v, 1, cartesianUpper(items[k].Tables))
				}
				out[k] = v
				sources[k] = "factorjoin"
				e.Metrics.Sources.Add("factorjoin", 1)
				hits++
				continue
			}
		}
		need = append(need, k)
	}
	if len(need) == 0 {
		batchSpan(obs.OutcomeOK, "")
		return out
	}
	e.Metrics.ModelCalls.Add(int64(len(need)))
	errs := make([]error, len(items))
	clamped := make([]bool, len(items))
	memo := factorjoin.NewMemo()
	par.Do(len(need), e.fanOutWorkers(len(need), parallelism), func(i int) {
		k := need[i]
		fn, upper := e.joinModelCall(fj, items[k].Tables, items[k].Conds, memo)
		raw, err := e.Guard.Do("factorjoin", fn)
		if err != nil {
			errs[k] = err
			return
		}
		v, err := e.Guard.Sanitize("factorjoin", raw, 1, upper)
		if err != nil {
			errs[k] = err
			return
		}
		clamped[k] = v != raw
		out[k] = v
	})
	// Serial epilogue: breaker accounting, per-item fallbacks, metrics,
	// and subset-memo publication for the keyed successes.
	outcome := obs.OutcomeOK
	var failures, fallbacks int64
	for _, k := range need {
		if errs[k] != nil {
			e.Infer.RecordFailure("factorjoin")
			failures++
			fallbacks++
			out[k] = e.Fallback.EstimateJoin(items[k].Tables, items[k].Conds)
			sources[k] = e.Fallback.Name()
			e.Metrics.Sources.Add(e.Fallback.Name(), 1)
			continue
		}
		e.Infer.RecordSuccess("factorjoin")
		sources[k] = "factorjoin"
		e.Metrics.Sources.Add("factorjoin", 1)
		if clamped[k] {
			outcome = obs.OutcomeClamped
		}
		if items[k].Key != "" {
			e.vec.putSubset(items[k].Key, out[k])
		}
		if e.Residual != nil {
			out[k] = e.correctFinal(obs.OpJoinBatch, items[k].Tables, items[k].Conds, out[k], 1, cartesianUpper(items[k].Tables))
		}
	}
	e.Metrics.ModelFailures.Add(failures)
	e.Metrics.Fallbacks.Add(fallbacks)
	e.Metrics.ModelLatency.Observe(float64(time.Since(start).Nanoseconds()))
	var errMsg string
	if failures > 0 {
		for _, err := range errs {
			if err != nil {
				errMsg = err.Error()
				break
			}
		}
	}
	batchSpan(outcome, errMsg)
	return out
}

// groupColumnKey names a group-key set for calibration lookup.
func groupColumnKey(table string, cols []string) string {
	return table + "." + strings.Join(cols, ",")
}

// EstimateGroupNDV implements engine.CardEstimator: RBX over the filtered
// sample profile of each table's group keys, multiplied across tables and
// capped by the estimated result size.
func (e *Estimator) EstimateGroupNDV(q *engine.Query) float64 {
	e.Metrics.Calls.Add(1)
	start := time.Now()
	groupTables := func() []string {
		seen := map[string]bool{}
		var out []string
		for _, g := range q.GroupBy {
			if !seen[g.Tab] {
				seen[g.Tab] = true
				out = append(out, g.Tab)
			}
		}
		return out
	}
	fallback := func(cause error) float64 {
		e.Metrics.Fallbacks.Add(1)
		v := e.Fallback.EstimateGroupNDV(q)
		e.fallbackSpan(obs.OpGroupNDV, groupTables(), cause, v, start)
		return v
	}
	model := e.Infer.RBX()
	if model == nil {
		return fallback(&ModelError{Key: "rbx", Outcome: obs.OutcomeMissing, Msg: "core: no RBX model loaded"})
	}
	perTable := map[string][]string{}
	var order []string
	for _, g := range q.GroupBy {
		if _, ok := perTable[g.Tab]; !ok {
			order = append(order, g.Tab)
		}
		perTable[g.Tab] = append(perTable[g.Tab], g.Col)
	}
	ndv := 1.0
	for _, binding := range order {
		cols := perTable[binding]
		t := q.TableByBinding(binding)
		frame := e.Samples[t.Name]
		if frame == nil || frame.Len() == 0 {
			return fallback(fmt.Errorf("core: no sample frame for table %s", t.Name))
		}
		key := groupColumnKey(t.Name, cols)
		if !e.Infer.RBXUsable(key) {
			return fallback(&ModelError{Key: "rbx:" + key, Outcome: obs.OutcomeDisabled, Msg: fmt.Sprintf("core: rbx disabled for %s", key)})
		}
		filtered := frame
		if t.Filter != nil {
			idx := map[string]int{}
			for i, c := range frame.Columns() {
				idx[c] = i
			}
			filtered = frame.Filter(func(row []types.Datum) bool {
				return t.Filter.Eval(func(_, col string) types.Datum { return row[idx[col]] })
			})
		}
		if filtered.Len() == 0 {
			continue // no sample survivors: contributes nothing measurable
		}
		// A column set's NDV cannot exceed the table population.
		est, err := e.guarded(obs.OpGroupNDV, []string{binding}, "rbx", 1, math.Max(float64(frame.PopSize()), 1), func() (float64, error) {
			return model.EstimateNDVForColumn(key, filtered.ProfileOf(cols...)), nil
		})
		if err != nil {
			return fallback(err)
		}
		ndv *= est
	}
	var out float64
	if len(q.Tables) == 1 {
		out = e.EstimateFilter(q.Tables[0])
	} else {
		out = e.EstimateJoin(q.Tables, q.Joins)
	}
	res := math.Min(ndv, math.Max(out, 1))
	// Summarize: the capping filter/join call above traced its own spans,
	// but the request's answer is RBX's — record it last so Trace.Source
	// attributes the NDV to the model that produced it.
	e.span(obs.Span{Op: obs.OpGroupNDV, Tables: groupTables(), Key: "rbx", Source: "rbx", Outcome: obs.OutcomeOK, Value: res, Duration: time.Since(start)})
	return res
}

// clampEst bounds an estimate to [lo, hi] before it leaves the estimator —
// the arithmetic-after-the-ladder counterpart of Guard.Sanitize, and the
// clamp helper the estclamp analyzer recognizes. NaN collapses to lo.
func clampEst(v, lo, hi float64) float64 {
	if math.IsNaN(v) {
		return lo
	}
	return math.Min(hi, math.Max(lo, v))
}

// countSingle estimates one filtered table without fallback (used by the
// featurization Estimate API, which surfaces errors to its caller). The
// selectivity is already sanitized into [0, 1], so the clamp is a no-op
// today; it guarantees the product stays in-range if that invariant moves.
func (e *Estimator) countSingle(t *engine.QueryTable) (float64, error) {
	sel, err := e.filterSelectivity(t)
	if err != nil {
		return 0, err
	}
	rows := float64(t.Table.NumRows())
	return clampEst(sel*rows, 0, rows), nil
}

// PredictCostMillis runs the learned cost model under the guard and
// breaker. ok is false when the model is missing, tripped, or produced an
// invalid latency — callers should then keep the heuristic cost.
func (e *Estimator) PredictCostMillis(features []float64) (float64, bool) {
	model := e.Infer.CostModel()
	if model == nil {
		return 0, false
	}
	ms, err := e.guarded(obs.OpCost, nil, "costmodel", 0, math.MaxFloat64, func() (float64, error) {
		return model.PredictMillis(features), nil
	})
	if err != nil {
		return 0, false
	}
	return ms, true
}
