package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"bytecard/internal/engine"
	"bytecard/internal/expr"
	"bytecard/internal/factorjoin"
	"bytecard/internal/sample"
	"bytecard/internal/types"
)

// Estimator is ByteCard's cardinality estimator: Bayesian networks for
// single-table COUNT, FactorJoin for join sizes (fed by the BNs' filtered
// per-bucket key counts), and RBX over per-table sample frames for group
// NDV. Whenever a needed model is missing, disabled by the Model Monitor,
// or fails, the estimate transparently falls back to the configured
// traditional estimator — the reliability contract the paper's deployment
// depends on.
type Estimator struct {
	Infer *InferenceEngine
	// Fallback is the traditional estimator (typically sketch-based).
	Fallback engine.CardEstimator
	// Guard wraps every model call with panic recovery, the latency
	// budget, and estimate sanitization.
	Guard *Guard
	// Samples holds per-table sample frames for RBX featurization (the
	// Model Loader's in-memory DataFrames).
	Samples map[string]*sample.Frame
	// JoinMode selects FactorJoin's estimate or bound output.
	JoinMode factorjoin.Mode

	calls     atomic.Int64
	fallbacks atomic.Int64

	// vecMu guards vecCache: the optimizer's dynamic programming asks for
	// the same table's filtered bucket vector once per enumerated subset,
	// so memoizing per (table instance, key column) keeps join planning
	// O(tables) BN inferences instead of O(2^tables).
	vecMu    sync.Mutex
	vecCache map[vecKey][]float64
}

type vecKey struct {
	table *engine.QueryTable
	col   string
}

const vecCacheLimit = 8192

// NewEstimator wires an estimator to a loaded inference engine.
func NewEstimator(infer *InferenceEngine, fallback engine.CardEstimator) *Estimator {
	return &Estimator{
		Infer:    infer,
		Fallback: fallback,
		Guard:    NewGuard(GuardConfig{}),
		Samples:  map[string]*sample.Frame{},
	}
}

// guarded runs one model call through the full degradation ladder: breaker
// admission (rung 2), the guard's panic recovery / latency budget /
// sanitization into [lo, hi] (rung 1), and breaker accounting. Any error
// means the caller must fall back to the traditional estimator.
func (e *Estimator) guarded(key string, lo, hi float64, fn func() (float64, error)) (float64, error) {
	if !e.Infer.Allow(key) {
		return 0, fmt.Errorf("core: %s unavailable (breaker open or disabled)", key)
	}
	v, err := e.Guard.Do(key, fn)
	if err == nil {
		v, err = e.Guard.Sanitize(key, v, lo, hi)
	}
	if err != nil {
		e.Infer.RecordFailure(key)
		return 0, err
	}
	e.Infer.RecordSuccess(key)
	return v, nil
}

// Name implements engine.CardEstimator.
func (e *Estimator) Name() string { return "bytecard" }

// Calls returns the total number of estimate requests served.
func (e *Estimator) Calls() int64 { return e.calls.Load() }

// Fallbacks returns how many requests fell back to the traditional path.
func (e *Estimator) Fallbacks() int64 { return e.fallbacks.Load() }

func encoderFor(t *engine.QueryTable) expr.Encoder {
	return func(col string, d types.Datum) (float64, bool) {
		c := t.Table.ColByName(col)
		if c == nil {
			return d.AsFloat(), false
		}
		return c.EncodeDatum(d)
	}
}

// filterSelectivity evaluates a filter tree over the table's shard
// contexts, weighting shards by their population. The BN inference runs
// under the guard; the result is a sanitized selectivity in [0, 1].
func (e *Estimator) filterSelectivity(t *engine.QueryTable) (float64, error) {
	ctxs, ok := e.Infer.BNContexts(t.Name)
	if !ok {
		return 0, fmt.Errorf("core: no BN for table %s", t.Name)
	}
	return e.guarded("bn:"+t.Name, 0, 1, func() (float64, error) {
		enc := encoderFor(t)
		var rows, matched float64
		for _, ctx := range ctxs {
			sel, err := ctx.SelectivityNode(t.Filter, enc)
			if err != nil {
				return 0, err
			}
			rows += ctx.Model().Rows
			matched += ctx.Model().Rows * sel
		}
		if rows == 0 {
			return 0, fmt.Errorf("core: BN for %s has zero population", t.Name)
		}
		return matched / rows, nil
	})
}

// EstimateFilter implements engine.CardEstimator.
func (e *Estimator) EstimateFilter(t *engine.QueryTable) float64 {
	e.calls.Add(1)
	sel, err := e.filterSelectivity(t)
	if err != nil {
		e.fallbacks.Add(1)
		return e.Fallback.EstimateFilter(t)
	}
	return math.Max(1, sel*float64(t.Table.NumRows()))
}

// EstimateConj implements engine.CardEstimator (the column-order input).
func (e *Estimator) EstimateConj(t *engine.QueryTable, preds []expr.Pred) float64 {
	e.calls.Add(1)
	ctxs, ok := e.Infer.BNContexts(t.Name)
	if !ok {
		e.fallbacks.Add(1)
		return e.Fallback.EstimateConj(t, preds)
	}
	sel, err := e.guarded("bn:"+t.Name, 0, 1, func() (float64, error) {
		constraints := expr.BuildConstraints(preds, encoderFor(t))
		var rows, matched float64
		for _, ctx := range ctxs {
			s, err := ctx.SelectivityConj(constraints)
			if err != nil {
				return 0, err
			}
			rows += ctx.Model().Rows
			matched += ctx.Model().Rows * s
		}
		if rows == 0 {
			return 0, fmt.Errorf("core: BN for %s has zero population", t.Name)
		}
		return matched / rows, nil
	})
	if err != nil {
		e.fallbacks.Add(1)
		return e.Fallback.EstimateConj(t, preds)
	}
	return sel
}

// jointVector returns the filtered per-bucket count vector of keyCol under
// the table's filter tree, applying inclusion–exclusion for OR filters and
// summing across shard models.
func (e *Estimator) jointVector(t *engine.QueryTable, keyCol string, buckets int) ([]float64, error) {
	ctxs, ok := e.Infer.BNContexts(t.Name)
	if !ok {
		return nil, fmt.Errorf("core: no BN for table %s", t.Name)
	}
	enc := encoderFor(t)
	terms := []expr.IETerm{{Sign: 1}}
	if t.Filter != nil {
		var err error
		terms, err = t.Filter.InclusionExclusion()
		if err != nil {
			return nil, err
		}
	}
	scale := float64(t.Table.NumRows())
	var popRows float64
	for _, ctx := range ctxs {
		popRows += ctx.Model().Rows
	}
	if popRows == 0 {
		return nil, fmt.Errorf("core: BN for %s has zero population", t.Name)
	}
	out := make([]float64, buckets)
	for _, ctx := range ctxs {
		weight := ctx.Model().Rows / popRows * scale
		for _, term := range terms {
			vec, err := ctx.JointWithColumn(expr.BuildConstraints(term.Preds, enc), keyCol)
			if err != nil {
				return nil, err
			}
			if len(vec) != buckets {
				return nil, fmt.Errorf("core: BN key %s.%s has %d bins, buckets want %d", t.Name, keyCol, len(vec), buckets)
			}
			for b, v := range vec {
				out[b] += term.Sign * weight * v
			}
		}
	}
	for b := range out {
		if out[b] < 0 {
			out[b] = 0
		}
	}
	return out, nil
}

// EstimateJoin implements engine.CardEstimator via FactorJoin inference
// over BN-conditioned bucket counts.
func (e *Estimator) EstimateJoin(tables []*engine.QueryTable, joins []engine.JoinCond) float64 {
	e.calls.Add(1)
	fj := e.Infer.FactorJoin()
	if fj == nil {
		e.fallbacks.Add(1)
		return e.Fallback.EstimateJoin(tables, joins)
	}
	byBinding := map[string]*engine.QueryTable{}
	fjTables := make([]factorjoin.QueryTable, len(tables))
	for i, t := range tables {
		fjTables[i] = factorjoin.QueryTable{Binding: t.Binding, Name: t.Name}
		byBinding[t.Binding] = t
	}
	conds := make([]factorjoin.Cond, len(joins))
	for i, j := range joins {
		conds[i] = factorjoin.Cond{LBind: j.LeftTab, LCol: j.LeftCol, RBind: j.RightTab, RCol: j.RightCol}
	}
	src := func(binding, table, column string, bounds []float64) ([]float64, error) {
		t := byBinding[binding]
		key := vecKey{table: t, col: column}
		e.vecMu.Lock()
		if vec, ok := e.vecCache[key]; ok {
			e.vecMu.Unlock()
			return vec, nil
		}
		e.vecMu.Unlock()
		vec, err := e.jointVector(t, column, len(bounds)-1)
		if err != nil {
			return nil, err
		}
		if e.JoinMode == factorjoin.ModeEstimate {
			// Sub-half-row bucket mass is smoothing noise, but a
			// high-fanout bucket amplifies it by orders of magnitude;
			// floor it (bound mode keeps every epsilon to stay sound).
			for b, v := range vec {
				if v < 0.5 {
					vec[b] = 0
				}
			}
		}
		e.vecMu.Lock()
		if e.vecCache == nil || len(e.vecCache) > vecCacheLimit {
			e.vecCache = map[vecKey][]float64{}
		}
		e.vecCache[key] = vec
		e.vecMu.Unlock()
		return vec, nil
	}
	// The inner-join estimate can never exceed the Cartesian product of
	// the joined relations; that product bounds the sanitizer.
	upper := 1.0
	for _, t := range tables {
		upper *= math.Max(float64(t.Table.NumRows()), 1)
	}
	est, err := e.guarded("factorjoin", 1, upper, func() (float64, error) {
		return fj.Estimate(fjTables, conds, src, e.JoinMode)
	})
	if err != nil {
		e.fallbacks.Add(1)
		return e.Fallback.EstimateJoin(tables, joins)
	}
	return est
}

// groupColumnKey names a group-key set for calibration lookup.
func groupColumnKey(table string, cols []string) string {
	return table + "." + strings.Join(cols, ",")
}

// EstimateGroupNDV implements engine.CardEstimator: RBX over the filtered
// sample profile of each table's group keys, multiplied across tables and
// capped by the estimated result size.
func (e *Estimator) EstimateGroupNDV(q *engine.Query) float64 {
	e.calls.Add(1)
	model := e.Infer.RBX()
	if model == nil {
		e.fallbacks.Add(1)
		return e.Fallback.EstimateGroupNDV(q)
	}
	perTable := map[string][]string{}
	var order []string
	for _, g := range q.GroupBy {
		if _, ok := perTable[g.Tab]; !ok {
			order = append(order, g.Tab)
		}
		perTable[g.Tab] = append(perTable[g.Tab], g.Col)
	}
	ndv := 1.0
	for _, binding := range order {
		cols := perTable[binding]
		t := q.TableByBinding(binding)
		frame := e.Samples[t.Name]
		if frame == nil || frame.Len() == 0 {
			e.fallbacks.Add(1)
			return e.Fallback.EstimateGroupNDV(q)
		}
		key := groupColumnKey(t.Name, cols)
		if !e.Infer.RBXUsable(key) {
			e.fallbacks.Add(1)
			return e.Fallback.EstimateGroupNDV(q)
		}
		filtered := frame
		if t.Filter != nil {
			idx := map[string]int{}
			for i, c := range frame.Columns() {
				idx[c] = i
			}
			filtered = frame.Filter(func(row []types.Datum) bool {
				return t.Filter.Eval(func(_, col string) types.Datum { return row[idx[col]] })
			})
		}
		if filtered.Len() == 0 {
			continue // no sample survivors: contributes nothing measurable
		}
		// A column set's NDV cannot exceed the table population.
		est, err := e.guarded("rbx", 1, math.Max(float64(frame.PopSize()), 1), func() (float64, error) {
			return model.EstimateNDVForColumn(key, filtered.ProfileOf(cols...)), nil
		})
		if err != nil {
			e.fallbacks.Add(1)
			return e.Fallback.EstimateGroupNDV(q)
		}
		ndv *= est
	}
	var out float64
	if len(q.Tables) == 1 {
		out = e.EstimateFilter(q.Tables[0])
	} else {
		out = e.EstimateJoin(q.Tables, q.Joins)
	}
	return math.Min(ndv, math.Max(out, 1))
}

// countSingle estimates one filtered table without fallback (used by the
// featurization Estimate API, which surfaces errors to its caller).
func (e *Estimator) countSingle(t *engine.QueryTable) (float64, error) {
	sel, err := e.filterSelectivity(t)
	if err != nil {
		return 0, err
	}
	return sel * float64(t.Table.NumRows()), nil
}

// PredictCostMillis runs the learned cost model under the guard and
// breaker. ok is false when the model is missing, tripped, or produced an
// invalid latency — callers should then keep the heuristic cost.
func (e *Estimator) PredictCostMillis(features []float64) (float64, bool) {
	model := e.Infer.CostModel()
	if model == nil {
		return 0, false
	}
	ms, err := e.guarded("costmodel", 0, math.MaxFloat64, func() (float64, error) {
		return model.PredictMillis(features), nil
	})
	if err != nil {
		return 0, false
	}
	return ms, true
}
