package core

import "time"

// BreakerConfig tunes the per-model-key circuit breakers that sit between
// the estimator and the model registry. A breaker opens when a model fails
// too often — by consecutive count or by rate over a rolling window — and
// routes calls straight to the traditional estimator without invoking the
// model. After Cooldown the breaker admits probe calls (half-open) and
// closes again once enough of them succeed, letting recovered models back
// in without operator action. The Model Monitor's Disable/Enable flow sits
// above this: Disable is a deliberate quality decision that only Enable
// (revalidation) reverses, while breaker trips are transient reliability
// decisions that heal on their own. Enable also resets the key's breaker so
// a revalidated model starts with a clean slate.
type BreakerConfig struct {
	// FailureThreshold opens the breaker after this many consecutive
	// failures. Default 5; negative disables consecutive tripping.
	FailureThreshold int
	// FailureRate opens the breaker when the failure fraction over the
	// last Window outcomes reaches it. 0 disables rate tripping.
	FailureRate float64
	// Window is the rolling outcome window for FailureRate (default 20).
	Window int
	// Cooldown is how long an open breaker blocks calls before admitting
	// half-open probes (default 30s).
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive successful probes close a
	// half-open breaker (default 2). Any probe failure reopens it.
	HalfOpenProbes int
}

func (c *BreakerConfig) fill() {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 5
	}
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
}

// Breaker states.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breaker is the per-key state machine. It is not self-locking: the
// InferenceEngine serializes access under its registry mutex.
type breaker struct {
	cfg   BreakerConfig
	state string

	consecutive int    // consecutive failures while closed
	window      []bool // rolling outcome ring, true = failure
	windowNext  int
	windowLen   int
	successes   int // consecutive successes while half-open
	openedAt    time.Time

	trips    int64 // closed/half-open -> open transitions
	failures int64 // total recorded failures
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg.fill()
	return &breaker{cfg: cfg, state: BreakerClosed, window: make([]bool, cfg.Window)}
}

// allow reports whether a call may proceed, transitioning open breakers to
// half-open once the cooldown has elapsed.
func (b *breaker) allow(now time.Time) bool {
	switch b.state {
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.successes = 0
		return true
	default:
		return true
	}
}

func (b *breaker) recordFailure(now time.Time) {
	b.failures++
	switch b.state {
	case BreakerHalfOpen:
		// A failed probe means the model has not recovered.
		b.open(now)
	case BreakerClosed:
		b.consecutive++
		b.push(true)
		if b.tripped() {
			b.open(now)
		}
	}
}

func (b *breaker) recordSuccess() {
	switch b.state {
	case BreakerHalfOpen:
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.reset()
		}
	case BreakerClosed:
		b.consecutive = 0
		b.push(false)
	}
}

func (b *breaker) tripped() bool {
	if b.cfg.FailureThreshold > 0 && b.consecutive >= b.cfg.FailureThreshold {
		return true
	}
	if b.cfg.FailureRate > 0 && b.windowLen >= b.cfg.Window {
		fails := 0
		for _, f := range b.window {
			if f {
				fails++
			}
		}
		if float64(fails)/float64(b.windowLen) >= b.cfg.FailureRate {
			return true
		}
	}
	return false
}

func (b *breaker) open(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.trips++
}

// reset returns the breaker to a pristine closed state (also used when the
// Model Monitor re-enables a key after revalidation).
func (b *breaker) reset() {
	b.state = BreakerClosed
	b.consecutive = 0
	b.successes = 0
	b.windowNext = 0
	b.windowLen = 0
	for i := range b.window {
		b.window[i] = false
	}
}

func (b *breaker) push(failed bool) {
	b.window[b.windowNext] = failed
	b.windowNext = (b.windowNext + 1) % len(b.window)
	if b.windowLen < len(b.window) {
		b.windowLen++
	}
}

// BreakerInfo is one breaker's externally visible state.
type BreakerInfo struct {
	Key                 string
	State               string
	ConsecutiveFailures int
	Failures            int64
	Trips               int64
}
