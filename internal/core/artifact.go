// Package core is ByteCard's framework layer — the paper's primary
// contribution. It provides the Inference Engine abstraction
// (loadModel / validate / initContext / featurizeSQLQuery / featurizeAST /
// estimate), a model registry with the size checker, health detection and
// LRU retention the Model Validator enforces, and the ByteCard estimator
// that plugs the learned models (Bayesian networks, FactorJoin, RBX) into
// the warehouse optimizer behind the engine.CardEstimator interface, with
// graceful fallback to the traditional estimator whenever a model is
// missing, invalid, or disabled by the Model Monitor.
package core

import (
	"fmt"
	"time"
)

// ModelKind identifies a model family.
type ModelKind string

// Model kinds.
const (
	KindBN         ModelKind = "bn"
	KindFactorJoin ModelKind = "factorjoin"
	KindRBX        ModelKind = "rbx"
	// KindCost is the learned cost model — the paper's planned next
	// ML-enhanced component, deployed through the same framework.
	KindCost ModelKind = "costmodel"
)

// Artifact is one serialized model as stored in (and loaded from) the
// model store: the unit the Model Loader ships between the ModelForge
// service and the Inference Engine.
type Artifact struct {
	// Name is the unique store key, e.g. "imdb/bn/title" or
	// "imdb/bn/title#2" for shard-specialized models.
	Name string
	// Kind selects the decoder.
	Kind ModelKind
	// Table scopes BN artifacts (and shard-specialized variants).
	Table string
	// Shard numbers shard-specialized models; -1 for unsharded.
	Shard int
	// Timestamp orders artifact versions; the loader only installs
	// artifacts newer than what the engine holds.
	Timestamp time.Time
	// Data is the gob-encoded model payload.
	Data []byte
}

// Validate checks artifact metadata.
func (a *Artifact) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("core: artifact without name")
	}
	switch a.Kind {
	case KindBN:
		if a.Table == "" {
			return fmt.Errorf("core: BN artifact %s without table", a.Name)
		}
	case KindFactorJoin, KindRBX, KindCost:
	default:
		return fmt.Errorf("core: artifact %s has unknown kind %q", a.Name, a.Kind)
	}
	return nil
}
