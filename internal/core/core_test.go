package core_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"bytecard/internal/cardinal"
	"bytecard/internal/core"
	"bytecard/internal/datagen"
	"bytecard/internal/engine"
	"bytecard/internal/loader"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
	"bytecard/internal/sqlparse"
)

// pipeline trains Toy models into a temp store and loads them into a fresh
// inference engine, returning the wired estimator and execution engine.
func pipeline(t *testing.T) (*core.InferenceEngine, *core.Estimator, *engine.Engine, *datagen.Dataset) {
	t.Helper()
	ds := datagen.Toy(datagen.Config{Scale: 3, Seed: 41})
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	forge := modelforge.New("toy", ds.DB, ds.Schema, store, modelforge.Config{
		SampleRows:  4000,
		BucketCount: 40,
		RBX:         rbx.TrainConfig{Columns: 150, Epochs: 8, MaxPop: 20000, Seed: 1},
		Seed:        1,
	})
	if _, err := forge.TrainAll(); err != nil {
		t.Fatal(err)
	}
	infer := core.NewInferenceEngine(core.Options{})
	ld := loader.New(store, infer)
	if _, err := ld.RefreshOnce(); err != nil {
		t.Fatal(err)
	}
	est := core.NewEstimator(infer, cardinal.NewSketchEstimator(ds.DB, 32))
	loader.LoadSamples(ds.DB, est, 4000, 7)
	exec := engine.New(ds.DB, ds.Schema, est)
	return infer, est, exec, ds
}

func analyzed(t *testing.T, e *engine.Engine, sql string) *engine.Query {
	t.Helper()
	q, err := e.Analyze(sqlparse.MustParse(sql))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestPipelineLoadsAllModels(t *testing.T) {
	infer, _, _, _ := pipeline(t)
	snap := infer.Snapshot()
	if snap.Tables != 2 {
		t.Errorf("loaded tables = %d, want 2", snap.Tables)
	}
	if !snap.HasFJ || !snap.HasRBX {
		t.Errorf("missing models: fj=%v rbx=%v", snap.HasFJ, snap.HasRBX)
	}
	if snap.Loads < 4 {
		t.Errorf("loads = %d", snap.Loads)
	}
}

func TestBNCapturesCorrelationSketchMisses(t *testing.T) {
	_, est, exec, ds := pipeline(t)
	// flag is determined by val: truth of (val>=50 AND flag=0) is 0.
	q := analyzed(t, exec, "SELECT COUNT(*) FROM fact WHERE val >= 50 AND flag = 0")
	got := est.EstimateFilter(q.Tables[0])
	n := float64(ds.DB.Table("fact").NumRows())
	if got > n*0.03 {
		t.Errorf("ByteCard estimate %g should be near 0 (n=%g); AVI would give ~%g", got, n, n*0.25)
	}
	// And the satisfiable side estimates accurately.
	q2 := analyzed(t, exec, "SELECT COUNT(*) FROM fact WHERE val >= 50 AND flag = 1")
	got2 := est.EstimateFilter(q2.Tables[0])
	truth, err := exec.TrueCardinality("SELECT COUNT(*) FROM fact WHERE val >= 50 AND flag = 1")
	if err != nil {
		t.Fatal(err)
	}
	if q := cardinal.QError(got2, truth); q > 1.5 {
		t.Errorf("estimate %g vs truth %g (q=%g)", got2, truth, q)
	}
}

func TestJoinEstimateAccuracy(t *testing.T) {
	_, est, exec, _ := pipeline(t)
	sql := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat <= 2"
	q := analyzed(t, exec, sql)
	got := est.EstimateJoin(q.Tables, q.Joins)
	truth, err := exec.TrueCardinality(sql)
	if err != nil {
		t.Fatal(err)
	}
	if qe := cardinal.QError(got, truth); qe > 3 {
		t.Errorf("join estimate %g vs truth %g (q=%g)", got, truth, qe)
	}
	if est.Fallbacks() > 0 {
		t.Errorf("join estimation fell back %d times", est.Fallbacks())
	}
}

func TestGroupNDVEstimate(t *testing.T) {
	_, est, exec, _ := pipeline(t)
	sql := "SELECT val, COUNT(*) FROM fact GROUP BY val"
	q := analyzed(t, exec, sql)
	got := est.EstimateGroupNDV(q)
	res, err := exec.Run("SELECT COUNT(DISTINCT val) FROM fact")
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := res.ScalarInt()
	if qe := cardinal.QError(got, float64(truth)); qe > 2.5 {
		t.Errorf("group NDV %g vs truth %d (q=%g)", got, truth, qe)
	}
}

func TestEndToEndQueriesCorrect(t *testing.T) {
	_, _, exec, ds := pipeline(t)
	ref := engine.New(ds.DB, ds.Schema, engine.HeuristicEstimator{})
	sqls := []string{
		"SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND f.val < 40",
		"SELECT d.cat, COUNT(*), COUNT(DISTINCT f.flag) FROM fact f, dim d WHERE f.dim_id = d.id GROUP BY d.cat",
		"SELECT COUNT(*) FROM fact WHERE val < 10 OR flag = 1",
	}
	for _, sql := range sqls {
		a, err := exec.Run(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		b, err := ref.Run(sql)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Errorf("%s: rows %d vs %d", sql, len(a.Rows), len(b.Rows))
			continue
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j].AsFloat() != b.Rows[i][j].AsFloat() &&
					!(a.Rows[i][j].K == b.Rows[i][j].K && a.Rows[i][j].Equal(b.Rows[i][j])) {
					t.Errorf("%s: cell [%d][%d] %v vs %v", sql, i, j, a.Rows[i][j], b.Rows[i][j])
				}
			}
		}
	}
}

func TestFallbackWhenModelsMissing(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 5})
	infer := core.NewInferenceEngine(core.Options{})
	est := core.NewEstimator(infer, cardinal.NewSketchEstimator(ds.DB, 32))
	exec := engine.New(ds.DB, ds.Schema, est)
	res, err := exec.Run("SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.ScalarInt(); err != nil {
		t.Fatal(err)
	}
	if est.Fallbacks() == 0 {
		t.Error("expected fallbacks without loaded models")
	}
	if est.Calls() == 0 {
		t.Error("expected calls to be counted")
	}
}

func TestDisableForcesFallback(t *testing.T) {
	infer, est, exec, _ := pipeline(t)
	q := analyzed(t, exec, "SELECT COUNT(*) FROM fact WHERE val < 10")
	before := est.Fallbacks()
	infer.Disable("bn:fact")
	_ = est.EstimateFilter(q.Tables[0])
	if est.Fallbacks() != before+1 {
		t.Error("disabled model must fall back")
	}
	infer.Enable("bn:fact")
	_ = est.EstimateFilter(q.Tables[0])
	if est.Fallbacks() != before+1 {
		t.Error("re-enabled model must not fall back")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	infer := core.NewInferenceEngine(core.Options{})
	err := infer.LoadModel(core.Artifact{
		Name: "x", Kind: core.KindBN, Table: "t", Timestamp: time.Now(), Data: []byte("junk"),
	})
	if err == nil {
		t.Error("garbage BN must be rejected")
	}
	if infer.Snapshot().Rejects != 0 && !strings.Contains(err.Error(), "validation") {
		t.Logf("reject recorded: %v", err)
	}
}

func TestLoadModelSizeChecker(t *testing.T) {
	// Train one tiny model, then load it under a 1-byte per-model cap.
	_, _, _, ds := pipeline(t)
	_ = ds
	store, _ := modelstore.Open(t.TempDir())
	ds2 := datagen.Toy(datagen.Config{Scale: 1, Seed: 6})
	forge := modelforge.New("toy", ds2.DB, ds2.Schema, store, modelforge.Config{
		SampleRows: 500, BucketCount: 10,
		RBX:  rbx.TrainConfig{Columns: 40, Epochs: 2, MaxPop: 5000},
		Seed: 2,
	})
	if _, err := forge.TrainAll(); err != nil {
		t.Fatal(err)
	}
	infer := core.NewInferenceEngine(core.Options{MaxModelBytes: 1})
	ld := loader.New(store, infer)
	if _, err := ld.RefreshOnce(); err == nil {
		t.Error("oversized models must be rejected by the size checker")
	}
	if infer.Snapshot().Tables != 0 {
		t.Error("no BN should have been installed")
	}
}

func TestLRUEviction(t *testing.T) {
	store, _ := modelstore.Open(t.TempDir())
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 7})
	forge := modelforge.New("toy", ds.DB, ds.Schema, store, modelforge.Config{
		SampleRows: 500, BucketCount: 10,
		RBX:  rbx.TrainConfig{Columns: 40, Epochs: 2, MaxPop: 5000},
		Seed: 3,
	})
	if _, err := forge.TrainAll(); err != nil {
		t.Fatal(err)
	}
	// Find BN artifact sizes to pick a cap that holds exactly one table.
	manifests, _ := store.List()
	var maxBN int64
	for _, m := range manifests {
		if m.Kind == core.KindBN && m.SizeBytes > maxBN {
			maxBN = m.SizeBytes
		}
	}
	infer := core.NewInferenceEngine(core.Options{MaxTotalBytes: maxBN + 1})
	ld := loader.New(store, infer)
	_, _ = ld.RefreshOnce()
	snap := infer.Snapshot()
	if snap.Evictions == 0 {
		t.Errorf("expected LRU evictions with cap %d (total loaded %d)", maxBN+1, snap.TotalSize)
	}
	if snap.TotalSize > maxBN+1 {
		t.Errorf("total size %d exceeds cap", snap.TotalSize)
	}
}

func TestTimestampStalenessIgnored(t *testing.T) {
	infer, _, _, _ := pipeline(t)
	stamp := infer.Timestamp("bn:fact")
	if stamp.IsZero() {
		t.Fatal("missing timestamp for fact model")
	}
	// Re-loading an older artifact must be a no-op.
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 8})
	store, _ := modelstore.Open(t.TempDir())
	old := time.Now().Add(-24 * time.Hour)
	forge := modelforge.New("toy", ds.DB, ds.Schema, store, modelforge.Config{
		SampleRows: 300, BucketCount: 10,
		RBX:  rbx.TrainConfig{Columns: 40, Epochs: 2, MaxPop: 5000},
		Seed: 4, Now: func() time.Time { return old },
	})
	if _, err := forge.TrainAll(); err != nil {
		t.Fatal(err)
	}
	art, err := store.Get("toy/bn/fact")
	if err != nil {
		t.Fatal(err)
	}
	if err := infer.LoadModel(art); err != nil {
		t.Fatal(err)
	}
	if !infer.Timestamp("bn:fact").Equal(stamp) {
		t.Error("stale artifact must not replace newer model")
	}
}

func TestFeaturizeSQLAndAST(t *testing.T) {
	_, est, _, ds := pipeline(t)
	feat := core.NewFeaturizer(ds.DB, ds.Schema)
	sql := "SELECT COUNT(*) FROM fact WHERE val < 25"
	fv, err := feat.FeaturizeSQLQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	bySQL, err := est.Estimate(fv)
	if err != nil {
		t.Fatal(err)
	}
	fv2, err := feat.FeaturizeAST(sqlparse.MustParse(sql))
	if err != nil {
		t.Fatal(err)
	}
	byAST, err := est.Estimate(fv2)
	if err != nil {
		t.Fatal(err)
	}
	if bySQL != byAST {
		t.Errorf("SQL path %g != AST path %g", bySQL, byAST)
	}
	if fv.Query() == nil {
		t.Error("feature vector must expose its query")
	}
	if _, err := feat.FeaturizeSQLQuery("not sql"); err == nil {
		t.Error("bad SQL must fail featurization")
	}
}

func TestEstimateNDVStrict(t *testing.T) {
	_, est, _, ds := pipeline(t)
	feat := core.NewFeaturizer(ds.DB, ds.Schema)
	fv, err := feat.FeaturizeSQLQuery("SELECT COUNT(DISTINCT fact.val) FROM fact WHERE fact.flag = 1")
	if err != nil {
		t.Fatal(err)
	}
	est1, err := est.EstimateNDV(fv)
	if err != nil {
		t.Fatal(err)
	}
	if est1 < 1 || math.IsNaN(est1) {
		t.Errorf("NDV estimate = %g", est1)
	}
	// Without a distinct aggregate or grouping, NDV estimation must error.
	fv2, _ := feat.FeaturizeSQLQuery("SELECT COUNT(*) FROM fact")
	if _, err := est.EstimateNDV(fv2); err == nil {
		t.Error("expected error for NDV over plain COUNT(*)")
	}
}

func TestEstimateStrictWithoutModels(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 9})
	infer := core.NewInferenceEngine(core.Options{})
	est := core.NewEstimator(infer, engine.HeuristicEstimator{})
	feat := core.NewFeaturizer(ds.DB, ds.Schema)
	fv, _ := feat.FeaturizeSQLQuery("SELECT COUNT(*) FROM fact WHERE val < 25")
	if _, err := est.Estimate(fv); err == nil {
		t.Error("strict estimate must fail without models")
	}
	fvj, _ := feat.FeaturizeSQLQuery("SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id")
	if _, err := est.Estimate(fvj); err == nil {
		t.Error("strict join estimate must fail without models")
	}
}

func TestArtifactValidate(t *testing.T) {
	bad := []core.Artifact{
		{},
		{Name: "x", Kind: "bogus"},
		{Name: "x", Kind: core.KindBN}, // BN without table
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("artifact %+v must fail validation", a)
		}
	}
	good := core.Artifact{Name: "x", Kind: core.KindRBX}
	if err := good.Validate(); err != nil {
		t.Errorf("valid artifact rejected: %v", err)
	}
}

// TestConcurrentEstimationWhileLoading exercises the lock-free inference
// contract: query threads estimate while the loader swaps in fresh models.
func TestConcurrentEstimationWhileLoading(t *testing.T) {
	infer, est, exec, ds := pipeline(t)
	_ = infer
	q := analyzed(t, exec, "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND f.val < 40")
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		// Loader thread: retrain and reload repeatedly.
		store, err := modelstore.Open(t.TempDir())
		if err != nil {
			done <- err
			return
		}
		forge := modelforge.New("toy", ds.DB, ds.Schema, store, modelforge.Config{
			SampleRows: 500, BucketCount: 40,
			RBX:  rbx.TrainConfig{Columns: 40, Epochs: 2, MaxPop: 5000, Seed: 5},
			Seed: 5,
		})
		ld := loader.New(store, infer)
		for i := 0; i < 5; i++ {
			if _, err := forge.TrainTableAt("fact", time.Now().Add(time.Duration(i+1)*time.Minute)); err != nil {
				done <- err
				return
			}
			if _, err := ld.RefreshOnce(); err != nil {
				done <- err
				return
			}
		}
		close(stop)
		done <- nil
	}()
	for {
		select {
		case <-stop:
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			return
		default:
			if v := est.EstimateJoin(q.Tables, q.Joins); v < 0 {
				t.Fatal("negative estimate")
			}
		}
	}
}

// TestOrFilterInJoinEstimation verifies inclusion–exclusion flows through
// the FactorJoin count source.
func TestOrFilterInJoinEstimation(t *testing.T) {
	_, est, exec, _ := pipeline(t)
	sql := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND (f.val < 15 OR f.val > 85)"
	q := analyzed(t, exec, sql)
	got := est.EstimateJoin(q.Tables, q.Joins)
	truth, err := exec.TrueCardinality(sql)
	if err != nil {
		t.Fatal(err)
	}
	if qe := cardinal.QError(got, truth); qe > 3 {
		t.Errorf("OR-filtered join estimate %g vs truth %g (q=%g)", got, truth, qe)
	}
	if est.Fallbacks() > 0 {
		t.Errorf("OR filter fell back %d times", est.Fallbacks())
	}
}

func TestSnapshotAndCostModelAbsent(t *testing.T) {
	infer := core.NewInferenceEngine(core.Options{})
	if infer.CostModel() != nil {
		t.Error("empty engine must have no cost model")
	}
	snap := infer.Snapshot()
	if snap.Tables != 0 || snap.Loads != 0 || snap.HasFJ || snap.HasRBX {
		t.Errorf("empty snapshot = %+v", snap)
	}
	if !infer.Timestamp("bn:ghost").IsZero() {
		t.Error("unknown model must have zero timestamp")
	}
	if !infer.Timestamp("costmodel").IsZero() {
		t.Error("missing cost model must have zero timestamp")
	}
}

func TestLoadModelUnknownKind(t *testing.T) {
	infer := core.NewInferenceEngine(core.Options{})
	err := infer.LoadModel(core.Artifact{Name: "x", Kind: "mystery", Timestamp: time.Now()})
	if err == nil {
		t.Error("unknown kind must be rejected")
	}
}

func TestCorruptFactorJoinAndRBXRejected(t *testing.T) {
	infer := core.NewInferenceEngine(core.Options{})
	for _, kind := range []core.ModelKind{core.KindFactorJoin, core.KindRBX, core.KindCost} {
		err := infer.LoadModel(core.Artifact{
			Name: "bad", Kind: kind, Timestamp: time.Now(), Data: []byte("garbage"),
		})
		if err == nil {
			t.Errorf("corrupt %s must be rejected", kind)
		}
	}
}
