package core

import (
	"container/list"
	"sync"

	"bytecard/internal/obs"
)

// vecCacheLimit bounds the join-vector cache: the optimizer's dynamic
// programming re-requests the same (table instance, key column) vector
// once per enumerated subset, so a few thousand entries cover even wide
// joins with room for concurrent queries.
const vecCacheLimit = 8192

// vecEntryOverhead approximates the fixed per-entry footprint (map cell,
// LRU element, entry header) for the byte gauge.
const vecEntryOverhead = 96

// subsetKey is a canonical DP-subset identity (JoinBatchItem.Key); its
// cached value is one sanitized join-size estimate rather than a bucket
// vector. A distinct type keeps string subset keys from ever colliding
// with vecKey entries in the shared map.
type subsetKey string

// vecCache memoizes two kinds of derived inference state under one
// bounded LRU: BN-conditioned FactorJoin bucket vectors keyed by (table
// instance, key column), and whole sanitized join-size estimates keyed by
// canonical subset identity (JoinBatchItem.Key — this is what lets the
// batched planner skip FactorJoin entirely for subsets it has sized
// before, across ranks and across Plan calls). When full, the least
// recently touched entry is dropped — hot entries of the query being
// planned stay resident instead of the whole map being discarded. Shared
// by every view of one Estimator.
//
// Everything in here is derived from loaded model state, so the cache
// implements the registry's DerivedCache contract and is flushed on model
// load/enable/disable (registered as "joinvec" by NewEstimator).
type vecCache struct {
	mu      sync.Mutex
	limit   int
	entries map[any]*list.Element
	lru     *list.List // of *vecEntry; front = most recent
	bytes   int64
	metrics *obs.EstimatorMetrics
	cm      obs.CacheMetrics
}

type vecEntry struct {
	key    any
	vec    []float64 // bucket vector (vecKey entries)
	scalar float64   // sanitized estimate (subsetKey entries)
	size   int64
}

func newVecCache(limit int, metrics *obs.EstimatorMetrics) *vecCache {
	if limit <= 0 {
		limit = vecCacheLimit
	}
	return &vecCache{
		limit:   limit,
		entries: map[any]*list.Element{},
		lru:     list.New(),
		metrics: metrics,
	}
}

// entrySize approximates an entry's resident footprint.
func entrySize(key any, vec []float64) int64 {
	size := int64(vecEntryOverhead) + int64(8*len(vec))
	if s, ok := key.(subsetKey); ok {
		size += int64(len(s))
	}
	return size
}

// get returns the cached vector and marks it recently used.
func (c *vecCache) get(key vecKey) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[key]
	if !ok {
		c.miss()
		return nil, false
	}
	c.lru.MoveToFront(elem)
	c.hit()
	return elem.Value.(*vecEntry).vec, true
}

// put inserts a vector, evicting from the cold end past the limit.
func (c *vecCache) put(key vecKey, vec []float64) {
	c.insert(key, vec, 0)
}

// getSubset returns the memoized sanitized estimate for a canonical
// subset key and marks it recently used.
func (c *vecCache) getSubset(key string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[subsetKey(key)]
	if !ok {
		c.miss()
		return 0, false
	}
	c.lru.MoveToFront(elem)
	c.hit()
	return elem.Value.(*vecEntry).scalar, true
}

// putSubset memoizes a sanitized join-size estimate under its canonical
// subset key.
func (c *vecCache) putSubset(key string, v float64) {
	c.insert(subsetKey(key), nil, v)
}

func (c *vecCache) insert(key any, vec []float64, scalar float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := entrySize(key, vec)
	if elem, ok := c.entries[key]; ok {
		e := elem.Value.(*vecEntry)
		c.bytes += size - e.size
		c.cm.Bytes.Add(size - e.size)
		e.vec, e.scalar, e.size = vec, scalar, size
		c.lru.MoveToFront(elem)
		return
	}
	c.entries[key] = c.lru.PushFront(&vecEntry{key: key, vec: vec, scalar: scalar, size: size})
	c.bytes += size
	c.cm.Bytes.Add(size)
	c.cm.Entries.Add(1)
	for len(c.entries) > c.limit {
		back := c.lru.Back()
		c.removeLocked(back)
		c.metrics.CacheEvictions.Add(1)
		c.cm.Evictions.Add(1)
	}
}

// removeLocked unlinks one entry and settles the gauges (c.mu held).
func (c *vecCache) removeLocked(elem *list.Element) {
	e := elem.Value.(*vecEntry)
	delete(c.entries, e.key)
	c.lru.Remove(elem)
	c.bytes -= e.size
	c.cm.Bytes.Add(-e.size)
	c.cm.Entries.Add(-1)
}

func (c *vecCache) hit() {
	c.metrics.CacheHits.Add(1)
	c.cm.Hits.Add(1)
}

func (c *vecCache) miss() {
	c.metrics.CacheMisses.Add(1)
	c.cm.Misses.Add(1)
}

// len returns the resident entry count.
func (c *vecCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Flush drops every entry (model state changed), returning how many were
// resident.
func (c *vecCache) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	for elem := c.lru.Front(); elem != nil; elem = c.lru.Front() {
		c.removeLocked(elem)
	}
	c.cm.Invalidations.Add(int64(n))
	return n
}

// InvalidateTables drops every entry — conservatively: vector entries key
// on *engine.QueryTable instances (per-query, not per-physical-table) and
// subset keys are opaque strings, so table-scoped invalidation cannot be
// proven safe from the key alone. Vectors re-derive from the freshly
// loaded models on the next plan.
func (c *vecCache) InvalidateTables(tables ...string) int {
	return c.Flush()
}

// Stats returns the cache's uniform counter snapshot.
func (c *vecCache) Stats() obs.CacheSnapshot {
	return c.cm.Snapshot()
}
