package core

import (
	"container/list"
	"sync"

	"bytecard/internal/obs"
)

// vecCacheLimit bounds the join-vector cache: the optimizer's dynamic
// programming re-requests the same (table instance, key column) vector
// once per enumerated subset, so a few thousand entries cover even wide
// joins with room for concurrent queries.
const vecCacheLimit = 8192

// vecCache memoizes BN-conditioned FactorJoin bucket vectors with bounded
// LRU eviction: when full, the least recently touched entry is dropped —
// hot vectors of the query being planned stay resident instead of the
// whole map being discarded. Shared by every view of one Estimator.
type vecCache struct {
	mu      sync.Mutex
	limit   int
	entries map[vecKey]*list.Element
	lru     *list.List // of *vecEntry; front = most recent
	metrics *obs.EstimatorMetrics
}

type vecEntry struct {
	key vecKey
	vec []float64
}

func newVecCache(limit int, metrics *obs.EstimatorMetrics) *vecCache {
	if limit <= 0 {
		limit = vecCacheLimit
	}
	return &vecCache{
		limit:   limit,
		entries: map[vecKey]*list.Element{},
		lru:     list.New(),
		metrics: metrics,
	}
}

// get returns the cached vector and marks it recently used.
func (c *vecCache) get(key vecKey) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[key]
	if !ok {
		c.metrics.CacheMisses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(elem)
	c.metrics.CacheHits.Add(1)
	return elem.Value.(*vecEntry).vec, true
}

// put inserts a vector, evicting from the cold end past the limit.
func (c *vecCache) put(key vecKey, vec []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.entries[key]; ok {
		elem.Value.(*vecEntry).vec = vec
		c.lru.MoveToFront(elem)
		return
	}
	c.entries[key] = c.lru.PushFront(&vecEntry{key: key, vec: vec})
	for len(c.entries) > c.limit {
		back := c.lru.Back()
		delete(c.entries, back.Value.(*vecEntry).key)
		c.lru.Remove(back)
		c.metrics.CacheEvictions.Add(1)
	}
}

// len returns the resident entry count.
func (c *vecCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
