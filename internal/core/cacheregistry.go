package core

import (
	"bytecard/internal/obs"
)

// DerivedCache is the invalidation contract for any cache whose contents
// are derived from loaded model state — the join-vector/subset cache, the
// engine's plan cache, and whatever future tiers appear. The Inference
// Engine is the single authority on model churn (loads, enables,
// disables), so registered caches are invalidated from here and nowhere
// else: a model swap reaches every derived tier in one place instead of
// each consumer wiring its own hooks.
type DerivedCache interface {
	// InvalidateTables drops entries derived from the named physical
	// tables, returning how many were dropped. Implementations that cannot
	// scope by table drop everything (documented per cache).
	InvalidateTables(tables ...string) int
	// Flush drops every entry, returning how many were resident.
	Flush() int
	// Stats returns the cache's uniform counter snapshot.
	Stats() obs.CacheSnapshot
}

// RegisterCache attaches a named derived cache to the registry's
// invalidation fan-out. Registration order is preserved for deterministic
// iteration; re-registering a name replaces the previous cache (the name
// keeps its slot). Safe for concurrent use with loads and estimation.
func (e *InferenceEngine) RegisterCache(name string, c DerivedCache) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	if e.caches == nil {
		e.caches = map[string]DerivedCache{}
	}
	if _, ok := e.caches[name]; !ok {
		e.cacheNames = append(e.cacheNames, name)
	}
	e.caches[name] = c
}

// derivedCaches snapshots the registered caches in registration order.
func (e *InferenceEngine) derivedCaches() []DerivedCache {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	out := make([]DerivedCache, 0, len(e.cacheNames))
	for _, name := range e.cacheNames {
		out = append(out, e.caches[name])
	}
	return out
}

// invalidateCacheTables fans a table-scoped invalidation across every
// registered cache. Called outside e.mu: caches take their own locks, and
// a cache callback must never be able to deadlock against the registry.
func (e *InferenceEngine) invalidateCacheTables(tables ...string) {
	for _, c := range e.derivedCaches() {
		c.InvalidateTables(tables...)
	}
}

// FlushCaches drops every entry of every registered cache (operator
// escape hatch, also the conservative reaction to whole-model churn),
// returning the total number of entries dropped.
func (e *InferenceEngine) FlushCaches() int {
	n := 0
	for _, c := range e.derivedCaches() {
		n += c.Flush()
	}
	return n
}

// CacheStats snapshots every registered cache's counters by name.
func (e *InferenceEngine) CacheStats() map[string]obs.CacheSnapshot {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	out := make(map[string]obs.CacheSnapshot, len(e.cacheNames))
	for _, name := range e.cacheNames {
		out[name] = e.caches[name].Stats()
	}
	return out
}
