package core

import (
	"testing"
	"time"
)

func TestBreakerConsecutiveOpensAndRecovers(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute, HalfOpenProbes: 2})
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		b.recordFailure(now)
		if b.state != BreakerClosed {
			t.Fatalf("state after %d failures = %s", i+1, b.state)
		}
	}
	b.recordFailure(now)
	if b.state != BreakerOpen || b.trips != 1 {
		t.Fatalf("state = %s trips = %d, want open/1", b.state, b.trips)
	}
	if b.allow(now.Add(30 * time.Second)) {
		t.Error("open breaker admitted a call inside the cooldown")
	}
	// Past the cooldown the breaker goes half-open and admits probes.
	if !b.allow(now.Add(2 * time.Minute)) {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.state != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.state)
	}
	b.recordSuccess()
	if b.state != BreakerHalfOpen {
		t.Fatalf("one probe of two closed the breaker")
	}
	b.recordSuccess()
	if b.state != BreakerClosed {
		t.Fatalf("state = %s after enough probes, want closed", b.state)
	}
	if b.consecutive != 0 {
		t.Errorf("closed breaker kept %d consecutive failures", b.consecutive)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute})
	now := time.Unix(1000, 0)
	b.recordFailure(now)
	if !b.allow(now.Add(2 * time.Minute)) {
		t.Fatal("probe refused")
	}
	b.recordFailure(now.Add(2 * time.Minute))
	if b.state != BreakerOpen || b.trips != 2 {
		t.Fatalf("state = %s trips = %d, want reopened/2", b.state, b.trips)
	}
	// The second cooldown starts from the reopen.
	if b.allow(now.Add(2*time.Minute + 30*time.Second)) {
		t.Error("reopened breaker admitted a call too early")
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 3})
	now := time.Unix(1000, 0)
	b.recordFailure(now)
	b.recordFailure(now)
	b.recordSuccess()
	b.recordFailure(now)
	b.recordFailure(now)
	if b.state != BreakerClosed {
		t.Fatal("interleaved successes must keep the breaker closed")
	}
}

func TestBreakerRateTrip(t *testing.T) {
	b := newBreaker(BreakerConfig{
		FailureThreshold: -1, // consecutive tripping off
		FailureRate:      0.5,
		Window:           10,
		Cooldown:         time.Minute,
	})
	now := time.Unix(1000, 0)
	// Alternate success/failure: 50% failure rate over a full window (the
	// rate check runs when a failure lands, so failures go on odd slots).
	for i := 0; i < 10 && b.state == BreakerClosed; i++ {
		if i%2 == 1 {
			b.recordFailure(now)
		} else {
			b.recordSuccess()
		}
	}
	if b.state != BreakerOpen {
		t.Fatalf("state = %s, want rate-tripped open", b.state)
	}
}

func TestBreakerRateNeedsFullWindow(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: -1, FailureRate: 0.5, Window: 10})
	now := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		b.recordFailure(now)
	}
	if b.state != BreakerClosed {
		t.Error("rate tripping must wait for a full window")
	}
}

func TestEngineBreakerIntegration(t *testing.T) {
	e := NewInferenceEngine(Options{Breaker: BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute, HalfOpenProbes: 1}})
	now := time.Unix(5000, 0)
	e.SetClock(func() time.Time { return now })

	if !e.Allow("bn:orders") {
		t.Fatal("fresh key must be allowed")
	}
	e.RecordFailure("bn:orders")
	e.RecordFailure("bn:orders")
	if e.Allow("bn:orders") {
		t.Fatal("tripped key must be blocked")
	}
	if st := e.BreakerState("bn:orders"); st != BreakerOpen {
		t.Fatalf("state = %s", st)
	}
	snap := e.Snapshot()
	if snap.BreakerTrips != 1 || len(snap.Breakers) != 1 || snap.Breakers[0].Key != "bn:orders" {
		t.Errorf("snapshot = %+v", snap.Breakers)
	}

	// Cooldown elapses: one probe admitted, success closes.
	now = now.Add(2 * time.Minute)
	if !e.Allow("bn:orders") {
		t.Fatal("cooled key must admit a probe")
	}
	e.RecordSuccess("bn:orders")
	if st := e.BreakerState("bn:orders"); st != BreakerClosed {
		t.Fatalf("state = %s after probe success", st)
	}

	// Monitor disable blocks regardless of breaker state; Enable resets
	// both rungs.
	e.RecordFailure("bn:orders")
	e.RecordFailure("bn:orders")
	e.Disable("bn:orders")
	now = now.Add(time.Hour)
	if e.Allow("bn:orders") {
		t.Fatal("disabled key must be blocked past any cooldown")
	}
	e.Enable("bn:orders")
	if !e.Allow("bn:orders") {
		t.Fatal("enabled key must be allowed")
	}
	if st := e.BreakerState("bn:orders"); st != BreakerClosed {
		t.Errorf("Enable must reset the breaker, state = %s", st)
	}
	if ds := e.Snapshot().Disabled; len(ds) != 0 {
		t.Errorf("disabled keys = %v", ds)
	}
}

func TestSnapshotListsDisabled(t *testing.T) {
	e := NewInferenceEngine(Options{})
	e.Disable("rbx")
	e.Disable("bn:fact")
	snap := e.Snapshot()
	if len(snap.Disabled) != 2 || snap.Disabled[0] != "bn:fact" || snap.Disabled[1] != "rbx" {
		t.Errorf("disabled = %v", snap.Disabled)
	}
}
