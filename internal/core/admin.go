package core

import (
	"time"

	"bytecard/internal/obs"
)

// ModelAdmin is the documented administrative view of the Inference
// Engine's per-model-key state. It unifies what used to be five scattered
// methods (Disable/Enable/BreakerState/Disabled/Timestamp) behind one
// handle, so operational tooling — the Model Monitor, the CLI, tests —
// talks to a single surface instead of reaching into the registry.
//
// Model keys follow the registry convention: "bn:<table>" for single-table
// Bayesian networks, "factorjoin" for the join model, "rbx" for the NDV
// model, "rbx:<table.column>" for per-column RBX calibration state, and
// "costmodel" for the learned cost model.
type ModelAdmin struct {
	e *InferenceEngine
}

// Admin returns the administrative view of the registry.
func (e *InferenceEngine) Admin() ModelAdmin { return ModelAdmin{e: e} }

// ModelState is one key's full degradation-ladder state.
type ModelState struct {
	// Key is the model key queried.
	Key string `json:"key"`
	// Disabled reports a Model Monitor (or operator) disable.
	Disabled bool `json:"disabled"`
	// Breaker is the circuit-breaker state: BreakerClosed, BreakerOpen, or
	// BreakerHalfOpen.
	Breaker string `json:"breaker"`
	// Timestamp is the installed artifact version time (zero when no
	// artifact is loaded for the key).
	Timestamp time.Time `json:"timestamp"`
}

// State reports a key's current availability in one call.
func (a ModelAdmin) State(key string) ModelState {
	return ModelState{
		Key:       key,
		Disabled:  a.e.Disabled(key),
		Breaker:   a.e.BreakerState(key),
		Timestamp: a.e.Timestamp(key),
	}
}

// Disable marks a model key unusable; estimation falls back to the
// traditional estimator (the Model Monitor's guardrail).
func (a ModelAdmin) Disable(key string) { a.e.Disable(key) }

// Enable re-enables a previously disabled key and resets its circuit
// breaker: a model the Monitor revalidated starts with a clean slate.
func (a ModelAdmin) Enable(key string) { a.e.Enable(key) }

// CacheStats snapshots every registered derived cache's counters by name
// ("joinvec" for the estimator's join-vector/subset cache, "plan" for the
// engine's plan cache when one is wired).
func (a ModelAdmin) CacheStats() map[string]obs.CacheSnapshot { return a.e.CacheStats() }

// FlushCaches drops every entry of every registered derived cache,
// returning the total dropped — the operator escape hatch when cached
// plans or estimates are suspected stale.
func (a ModelAdmin) FlushCaches() int { return a.e.FlushCaches() }

// Usable reports whether the key may serve an inference right now —
// false when disabled or its breaker is open. Unlike Allow on the raw
// registry, Usable does not admit half-open probes and has no accounting
// side effects; it is a pure read for dashboards and tests.
func (a ModelAdmin) Usable(key string) bool {
	s := a.State(key)
	return !s.Disabled && s.Breaker != BreakerOpen
}
