package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"bytecard/internal/obs"
)

// ModelError is a classified model-call failure: every error on the
// guarded estimation path carries the model key it concerns and the
// obs.Outcome* verdict that produced it, so traces and metrics can
// attribute failures without string matching.
type ModelError struct {
	// Key is the model key ("bn:<table>", "factorjoin", "rbx", "costmodel").
	Key string
	// Outcome is the obs outcome constant classifying the failure.
	Outcome string
	// Msg is the rendered failure message.
	Msg string
}

// Error implements error.
func (e *ModelError) Error() string { return e.Msg }

// OutcomeOf classifies any error from the guarded estimation path,
// returning obs.OutcomeError for untyped errors.
func OutcomeOf(err error) string {
	var me *ModelError
	if errors.As(err, &me) {
		return me.Outcome
	}
	return obs.OutcomeError
}

// FaultHook intercepts guarded model calls. The faultinject package
// implements it to inject panics, delays, and corrupt outputs for chaos
// testing; production runs leave it nil. Before runs inside the guard's
// recovery scope just ahead of the model call (it may panic or sleep);
// Transform rewrites the model's raw output (it may return NaN).
type FaultHook interface {
	Before(key string)
	Transform(key string, v float64) float64
}

// GuardConfig tunes the inference guard.
type GuardConfig struct {
	// LatencyBudget bounds one guarded model call; a call that exceeds it
	// is abandoned (it finishes on a background goroutine) and reported
	// as a failure so estimation falls back. 0 disables the budget —
	// planning then never pays the goroutine handoff on the hot path.
	LatencyBudget time.Duration
}

// Guard wraps every learned-model call (BN selectivity, FactorJoin, RBX,
// cost model) with the protections the deployment contract requires: a
// panicking model must not crash the query goroutine, a stalled model must
// not stall planning past the latency budget, and a NaN/Inf/negative or
// absurdly large estimate must never reach the optimizer. Each protection
// converts the failure into an error the estimator turns into a sketch
// fallback, counted per failure class.
type Guard struct {
	cfg GuardConfig

	mu   sync.RWMutex
	hook FaultHook

	panics   atomic.Int64
	timeouts atomic.Int64
	invalid  atomic.Int64
	clamped  atomic.Int64
}

// NewGuard creates a guard.
func NewGuard(cfg GuardConfig) *Guard { return &Guard{cfg: cfg} }

// SetHook installs (or, with nil, removes) a fault-injection hook.
func (g *Guard) SetHook(h FaultHook) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hook = h
}

func (g *Guard) currentHook() FaultHook {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.hook
}

// GuardStats counts guard interventions by failure class.
type GuardStats struct {
	// Panics is how many model calls panicked and were recovered.
	Panics int64
	// Timeouts is how many calls exceeded the latency budget.
	Timeouts int64
	// Invalid is how many estimates were rejected as NaN/Inf/negative.
	Invalid int64
	// Clamped is how many finite estimates were pulled into bounds.
	Clamped int64
}

// Stats returns the intervention counters.
func (g *Guard) Stats() GuardStats {
	return GuardStats{
		Panics:   g.panics.Load(),
		Timeouts: g.timeouts.Load(),
		Invalid:  g.invalid.Load(),
		Clamped:  g.clamped.Load(),
	}
}

// Do runs one model call under panic recovery and the latency budget,
// applying the fault hook around it. The returned error classifies the
// failure; the value is unsanitized (callers follow with Sanitize).
func (g *Guard) Do(key string, fn func() (float64, error)) (float64, error) {
	run := func() (v float64, err error) {
		defer func() {
			if r := recover(); r != nil {
				g.panics.Add(1)
				err = &ModelError{Key: key, Outcome: obs.OutcomePanic, Msg: fmt.Sprintf("core: model %s panicked: %v", key, r)}
			}
		}()
		hook := g.currentHook()
		if hook != nil {
			hook.Before(key)
		}
		v, err = fn()
		if err == nil && hook != nil {
			v = hook.Transform(key, v)
		}
		return v, err
	}
	if g.cfg.LatencyBudget <= 0 {
		return run()
	}
	type result struct {
		v   float64
		err error
	}
	ch := make(chan result, 1)
	go func() { //bytecard:goroutine-ok latency-budget watcher must outlive the abandoned call; a pooled job would block the pool slot
		v, err := run()
		ch <- result{v, err}
	}()
	timer := time.NewTimer(g.cfg.LatencyBudget)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-timer.C:
		g.timeouts.Add(1)
		return 0, &ModelError{Key: key, Outcome: obs.OutcomeTimeout, Msg: fmt.Sprintf("core: model %s exceeded latency budget %v", key, g.cfg.LatencyBudget)}
	}
}

// Sanitize validates a model estimate before it reaches the optimizer:
// NaN, ±Inf, and negative values are rejected (the model is lying, not
// merely imprecise), while finite out-of-range values are clamped into
// [lo, hi] — a cardinality can never exceed the relation's row count nor
// drop below one row.
func (g *Guard) Sanitize(key string, v, lo, hi float64) (float64, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		g.invalid.Add(1)
		return 0, &ModelError{Key: key, Outcome: obs.OutcomeInvalid, Msg: fmt.Sprintf("core: model %s produced invalid estimate %v", key, v)}
	}
	if v < lo {
		g.clamped.Add(1)
		return lo, nil
	}
	if v > hi {
		g.clamped.Add(1)
		return hi, nil
	}
	return v, nil
}
