package core

import (
	"testing"

	"bytecard/internal/engine"
	"bytecard/internal/obs"
)

func TestVecCacheLRUEviction(t *testing.T) {
	m := obs.NewEstimatorMetrics()
	c := newVecCache(2, m)
	t1, t2, t3 := &engine.QueryTable{}, &engine.QueryTable{}, &engine.QueryTable{}
	k1 := vecKey{table: t1, col: "a"}
	k2 := vecKey{table: t2, col: "a"}
	k3 := vecKey{table: t3, col: "a"}

	c.put(k1, []float64{1})
	c.put(k2, []float64{2})
	if _, ok := c.get(k1); !ok { // touch k1: k2 becomes coldest
		t.Fatal("k1 missing after insert")
	}
	c.put(k3, []float64{3}) // evicts k2, not the recently touched k1
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	if _, ok := c.get(k2); ok {
		t.Error("coldest entry k2 survived eviction")
	}
	if v, ok := c.get(k1); !ok || v[0] != 1 {
		t.Error("hot entry k1 was evicted")
	}
	if _, ok := c.get(k3); !ok {
		t.Error("newest entry k3 missing")
	}

	if got := m.CacheEvictions.Load(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// Hits: k1 (x2), k3. Misses: k2 (x1, post-eviction).
	if got := m.CacheHits.Load(); got != 3 {
		t.Errorf("hits = %d, want 3", got)
	}
	if got := m.CacheMisses.Load(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
}

func TestVecCacheUpdateInPlace(t *testing.T) {
	c := newVecCache(2, obs.NewEstimatorMetrics())
	k := vecKey{table: &engine.QueryTable{}, col: "a"}
	c.put(k, []float64{1})
	c.put(k, []float64{9})
	if c.len() != 1 {
		t.Errorf("len = %d, want 1 (update must not duplicate)", c.len())
	}
	if v, _ := c.get(k); v[0] != 9 {
		t.Errorf("got %v, want updated vector", v)
	}
}
