package core

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"time"

	"bytecard/internal/bn"
	"bytecard/internal/costmodel"
	"bytecard/internal/factorjoin"
	"bytecard/internal/rbx"
)

// Options configure the Inference Engine's size checker and circuit
// breakers.
type Options struct {
	// MaxModelBytes rejects any single model above this size (the
	// per-model size check); 0 means 64 MiB.
	MaxModelBytes int64
	// MaxTotalBytes caps the cumulative loaded size; least recently used
	// BN models are evicted beyond it. 0 means 512 MiB.
	MaxTotalBytes int64
	// Breaker tunes the per-model-key circuit breakers (zero values take
	// the BreakerConfig defaults).
	Breaker BreakerConfig
}

func (o *Options) fill() {
	if o.MaxModelBytes <= 0 {
		o.MaxModelBytes = 64 << 20
	}
	if o.MaxTotalBytes <= 0 {
		o.MaxTotalBytes = 512 << 20
	}
	o.Breaker.fill()
}

// bnEntry is one loaded single-table model (possibly one shard of a
// shard-specialized set) with its immutable inference context.
type bnEntry struct {
	model     *bn.Model
	ctx       *bn.Context
	shard     int
	timestamp time.Time
	size      int64
}

// tableModels groups the shard entries of one table.
type tableModels struct {
	shards  []*bnEntry
	lruElem *list.Element
}

// InferenceEngine is the central hub for deployed inference algorithms: it
// loads and validates models, builds their immutable inference contexts
// (initContext), enforces size limits with LRU retention, and serves
// lock-free estimation to concurrent query threads (contexts are immutable;
// the registry itself takes only a read lock per lookup).
type InferenceEngine struct {
	opts Options

	mu        sync.RWMutex
	tables    map[string]*tableModels
	fj        *factorjoin.Model
	fjStamp   time.Time
	rbxModel  *rbx.Model
	rbxStamp  time.Time
	cost      *costmodel.Model
	costStamp time.Time
	disabled  map[string]bool
	breakers  map[string]*breaker
	now       func() time.Time
	lru       *list.List // of table names; front = most recent
	totalSize int64

	// counters for observability
	loads, rejects, evictions int64

	// cacheMu guards the derived-cache registry (see RegisterCache). A
	// separate mutex: invalidation fans out to caches that take their own
	// locks, and must never run under e.mu.
	cacheMu    sync.Mutex
	caches     map[string]DerivedCache
	cacheNames []string // registration order
}

// NewInferenceEngine creates an empty engine.
func NewInferenceEngine(opts Options) *InferenceEngine {
	opts.fill()
	return &InferenceEngine{
		opts:     opts,
		tables:   map[string]*tableModels{},
		disabled: map[string]bool{},
		breakers: map[string]*breaker{},
		now:      time.Now,
		lru:      list.New(),
	}
}

// SetClock overrides the breaker clock (deterministic cooldown tests).
func (e *InferenceEngine) SetClock(now func() time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now = now
}

// LoadModel implements the loadModel/validate/initContext sequence for one
// artifact: decode, health-check, size-check, build the immutable context,
// and swap it into the registry. Artifacts older than the installed version
// are ignored (timestamp-based loading). A successful load invalidates the
// registered derived caches — table-scoped for BN artifacts, a full flush
// for the whole-warehouse models — so no cache ever serves an estimate
// derived from a replaced model.
func (e *InferenceEngine) LoadModel(a Artifact) error {
	if err := a.Validate(); err != nil {
		return err
	}
	var err error
	switch a.Kind {
	case KindBN:
		err = e.loadBN(a)
	case KindFactorJoin:
		err = e.loadFJ(a)
	case KindRBX:
		err = e.loadRBX(a)
	case KindCost:
		err = e.loadCost(a)
	default:
		return fmt.Errorf("core: unknown model kind %q", a.Kind)
	}
	if err != nil {
		return err
	}
	// Invalidate after the swap and outside e.mu (caches lock themselves).
	if a.Kind == KindBN {
		e.invalidateCacheTables(a.Table)
	} else {
		e.FlushCaches()
	}
	return nil
}

func (e *InferenceEngine) loadBN(a Artifact) error {
	model, err := bn.Decode(a.Data) // decode + health detector
	if err != nil {
		e.mu.Lock()
		e.rejects++
		e.mu.Unlock()
		return fmt.Errorf("core: BN artifact %s failed validation: %w", a.Name, err)
	}
	size := int64(len(a.Data))
	if size > e.opts.MaxModelBytes {
		e.mu.Lock()
		e.rejects++
		e.mu.Unlock()
		return fmt.Errorf("core: BN artifact %s (%d bytes) exceeds per-model limit %d", a.Name, size, e.opts.MaxModelBytes)
	}
	ctx, err := model.NewContext() // initContext
	if err != nil {
		return fmt.Errorf("core: BN artifact %s context: %w", a.Name, err)
	}
	entry := &bnEntry{model: model, ctx: ctx, shard: a.Shard, timestamp: a.Timestamp, size: size}

	e.mu.Lock()
	defer e.mu.Unlock()
	tm := e.tables[a.Table]
	if tm == nil {
		tm = &tableModels{}
		e.tables[a.Table] = tm
		tm.lruElem = e.lru.PushFront(a.Table)
	}
	for i, s := range tm.shards {
		if s.shard == a.Shard {
			if !a.Timestamp.After(s.timestamp) {
				return nil // stale artifact; keep the newer model
			}
			e.totalSize -= s.size
			tm.shards[i] = entry
			e.totalSize += size
			e.loads++
			e.touchLocked(a.Table)
			e.evictLocked()
			return nil
		}
	}
	tm.shards = append(tm.shards, entry)
	sort.Slice(tm.shards, func(i, j int) bool { return tm.shards[i].shard < tm.shards[j].shard })
	e.totalSize += size
	e.loads++
	e.touchLocked(a.Table)
	e.evictLocked()
	return nil
}

func (e *InferenceEngine) loadFJ(a Artifact) error {
	model, err := factorjoin.Decode(a.Data)
	if err != nil {
		return fmt.Errorf("core: FactorJoin artifact %s failed validation: %w", a.Name, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fj != nil && !a.Timestamp.After(e.fjStamp) {
		return nil
	}
	e.fj = model
	e.fjStamp = a.Timestamp
	e.loads++
	return nil
}

func (e *InferenceEngine) loadRBX(a Artifact) error {
	model, err := rbx.Decode(a.Data)
	if err != nil {
		return fmt.Errorf("core: RBX artifact %s failed validation: %w", a.Name, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rbxModel != nil && !a.Timestamp.After(e.rbxStamp) {
		return nil
	}
	e.rbxModel = model
	e.rbxStamp = a.Timestamp
	e.loads++
	return nil
}

func (e *InferenceEngine) loadCost(a Artifact) error {
	model, err := costmodel.Decode(a.Data)
	if err != nil {
		return fmt.Errorf("core: cost-model artifact %s failed validation: %w", a.Name, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cost != nil && !a.Timestamp.After(e.costStamp) {
		return nil
	}
	e.cost = model
	e.costStamp = a.Timestamp
	e.loads++
	return nil
}

// CostModel returns the loaded learned cost model, or nil.
func (e *InferenceEngine) CostModel() *costmodel.Model {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.disabled["costmodel"] {
		return nil
	}
	return e.cost
}

// touchLocked marks a table as recently used.
func (e *InferenceEngine) touchLocked(table string) {
	if tm := e.tables[table]; tm != nil && tm.lruElem != nil {
		e.lru.MoveToFront(tm.lruElem)
	}
}

// evictLocked drops least-recently-used table models until the cumulative
// size fits the cap.
func (e *InferenceEngine) evictLocked() {
	for e.totalSize > e.opts.MaxTotalBytes && e.lru.Len() > 1 {
		back := e.lru.Back()
		table := back.Value.(string)
		tm := e.tables[table]
		for _, s := range tm.shards {
			e.totalSize -= s.size
		}
		delete(e.tables, table)
		e.lru.Remove(back)
		e.evictions++
	}
}

// BNContexts returns the immutable contexts of a table's models (one per
// shard) and marks the table recently used. ok is false when the table has
// no usable model (absent or disabled).
func (e *InferenceEngine) BNContexts(table string) ([]*bn.Context, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.disabled["bn:"+table] {
		return nil, false
	}
	tm := e.tables[table]
	if tm == nil || len(tm.shards) == 0 {
		return nil, false
	}
	e.touchLocked(table)
	out := make([]*bn.Context, len(tm.shards))
	for i, s := range tm.shards {
		out[i] = s.ctx
	}
	return out, true
}

// FactorJoin returns the loaded join model, or nil.
func (e *InferenceEngine) FactorJoin() *factorjoin.Model {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.disabled["factorjoin"] {
		return nil
	}
	return e.fj
}

// RBX returns the loaded NDV model, or nil.
func (e *InferenceEngine) RBX() *rbx.Model {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.disabled["rbx"] {
		return nil
	}
	return e.rbxModel
}

// RBXUsable reports whether RBX may serve the given column (the monitor
// disables individual problem columns until calibration lands).
func (e *InferenceEngine) RBXUsable(column string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return !e.disabled["rbx"] && !e.disabled["rbx:"+column]
}

// Disable marks a model key unusable; estimation falls back to the
// traditional estimator (the Model Monitor's guardrail). Keys: "bn:<table>",
// "factorjoin", "rbx", "rbx:<table.column>".
//
// Deprecated: prefer the documented Admin() view.
func (e *InferenceEngine) Disable(key string) {
	e.mu.Lock()
	e.disabled[key] = true
	e.mu.Unlock()
	// Availability changed: cached estimates may embed the now-unusable
	// model's answers. Flushed outside e.mu.
	e.FlushCaches()
}

// Enable re-enables a previously disabled key. The key's circuit breaker
// is reset too: a model the Monitor revalidated starts with a clean slate.
//
// Deprecated: prefer the documented Admin() view.
func (e *InferenceEngine) Enable(key string) {
	e.mu.Lock()
	delete(e.disabled, key)
	if b := e.breakers[key]; b != nil {
		b.reset()
	}
	e.mu.Unlock()
	// Availability changed: fallback-derived cached estimates are stale
	// now that the model serves again. Flushed outside e.mu.
	e.FlushCaches()
}

// Allow reports whether a model key may serve an inference right now —
// false when the Monitor disabled it or its circuit breaker is open (an
// open breaker past its cooldown transitions to half-open and admits the
// probe). This is the admission rung of the degradation ladder; callers
// must follow up with RecordSuccess or RecordFailure.
func (e *InferenceEngine) Allow(key string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.disabled[key] {
		return false
	}
	b := e.breakers[key]
	if b == nil {
		return true
	}
	return b.allow(e.now())
}

// RecordFailure feeds one failed model call into the key's breaker,
// creating it on first use.
func (e *InferenceEngine) RecordFailure(key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b := e.breakers[key]
	if b == nil {
		b = newBreaker(e.opts.Breaker)
		e.breakers[key] = b
	}
	b.recordFailure(e.now())
}

// RecordSuccess feeds one successful model call into the key's breaker (a
// no-op for keys that never failed).
func (e *InferenceEngine) RecordSuccess(key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if b := e.breakers[key]; b != nil {
		b.recordSuccess()
	}
}

// BreakerState returns a key's breaker state (BreakerClosed for keys that
// never tripped).
//
// Deprecated: prefer Admin().State(key).Breaker.
func (e *InferenceEngine) BreakerState(key string) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if b := e.breakers[key]; b != nil {
		return b.state
	}
	return BreakerClosed
}

// Disabled reports whether a key is disabled.
//
// Deprecated: prefer Admin().State(key).Disabled.
func (e *InferenceEngine) Disabled(key string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.disabled[key]
}

// Timestamp returns the installed version time of a model key ("bn:<table>",
// "factorjoin", "rbx"); zero when absent.
//
// Deprecated: prefer Admin().State(key).Timestamp.
func (e *InferenceEngine) Timestamp(key string) time.Time {
	e.mu.RLock()
	defer e.mu.RUnlock()
	switch key {
	case "factorjoin":
		return e.fjStamp
	case "rbx":
		return e.rbxStamp
	case "costmodel":
		return e.costStamp
	default:
		if tm := e.tables[trimPrefix(key, "bn:")]; tm != nil && len(tm.shards) > 0 {
			latest := tm.shards[0].timestamp
			for _, s := range tm.shards[1:] {
				if s.timestamp.After(latest) {
					latest = s.timestamp
				}
			}
			return latest
		}
	}
	return time.Time{}
}

func trimPrefix(s, prefix string) string {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):]
	}
	return s
}

// Stats summarizes the registry for observability, including the full
// degradation-ladder state: Monitor-disabled keys and circuit breakers.
type Stats struct {
	Tables    int
	TotalSize int64
	Loads     int64
	Rejects   int64
	Evictions int64
	HasFJ     bool
	HasRBX    bool
	// Disabled lists keys the Model Monitor turned off (sorted).
	Disabled []string
	// Breakers lists every breaker that has recorded at least one
	// failure, sorted by key.
	Breakers []BreakerInfo
	// BreakerTrips totals closed→open transitions across all keys.
	BreakerTrips int64
}

// Snapshot returns current registry statistics.
func (e *InferenceEngine) Snapshot() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := Stats{
		Tables:    len(e.tables),
		TotalSize: e.totalSize,
		Loads:     e.loads,
		Rejects:   e.rejects,
		Evictions: e.evictions,
		HasFJ:     e.fj != nil,
		HasRBX:    e.rbxModel != nil,
	}
	for key := range e.disabled {
		s.Disabled = append(s.Disabled, key)
	}
	sort.Strings(s.Disabled)
	for key, b := range e.breakers {
		s.Breakers = append(s.Breakers, BreakerInfo{
			Key:                 key,
			State:               b.state,
			ConsecutiveFailures: b.consecutive,
			Failures:            b.failures,
			Trips:               b.trips,
		})
		s.BreakerTrips += b.trips
	}
	sort.Slice(s.Breakers, func(i, j int) bool { return s.Breakers[i].Key < s.Breakers[j].Key })
	return s
}
