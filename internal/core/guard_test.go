package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

type testHook struct {
	before    func(key string)
	transform func(key string, v float64) float64
}

func (h testHook) Before(key string) {
	if h.before != nil {
		h.before(key)
	}
}

func (h testHook) Transform(key string, v float64) float64 {
	if h.transform != nil {
		return h.transform(key, v)
	}
	return v
}

func TestGuardRecoversPanic(t *testing.T) {
	g := NewGuard(GuardConfig{})
	_, err := g.Do("bn:t", func() (float64, error) { panic("model exploded") })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
	if g.Stats().Panics != 1 {
		t.Errorf("panics = %d", g.Stats().Panics)
	}
	// The guard keeps working after a panic.
	v, err := g.Do("bn:t", func() (float64, error) { return 0.5, nil })
	if err != nil || v != 0.5 {
		t.Errorf("post-panic call = %v, %v", v, err)
	}
}

func TestGuardHookPanicRecovered(t *testing.T) {
	g := NewGuard(GuardConfig{})
	g.SetHook(testHook{before: func(string) { panic("injected") }})
	if _, err := g.Do("rbx", func() (float64, error) { return 1, nil }); err == nil {
		t.Fatal("hook panic must surface as error")
	}
	g.SetHook(nil)
	if _, err := g.Do("rbx", func() (float64, error) { return 1, nil }); err != nil {
		t.Fatalf("after hook removal: %v", err)
	}
}

func TestGuardHookTransform(t *testing.T) {
	g := NewGuard(GuardConfig{})
	g.SetHook(testHook{transform: func(_ string, v float64) float64 { return v * 10 }})
	v, err := g.Do("factorjoin", func() (float64, error) { return 4, nil })
	if err != nil || v != 40 {
		t.Errorf("transformed = %v, %v", v, err)
	}
}

func TestGuardLatencyBudget(t *testing.T) {
	g := NewGuard(GuardConfig{LatencyBudget: 5 * time.Millisecond})
	_, err := g.Do("bn:t", func() (float64, error) {
		time.Sleep(100 * time.Millisecond)
		return 1, nil
	})
	if err == nil || !strings.Contains(err.Error(), "latency budget") {
		t.Fatalf("err = %v, want budget breach", err)
	}
	if g.Stats().Timeouts != 1 {
		t.Errorf("timeouts = %d", g.Stats().Timeouts)
	}
	// Fast calls pass untouched.
	v, err := g.Do("bn:t", func() (float64, error) { return 2, nil })
	if err != nil || v != 2 {
		t.Errorf("fast call = %v, %v", v, err)
	}
}

func TestGuardDoPropagatesError(t *testing.T) {
	g := NewGuard(GuardConfig{})
	want := errors.New("no such column")
	if _, err := g.Do("bn:t", func() (float64, error) { return 0, want }); !errors.Is(err, want) {
		t.Errorf("err = %v", err)
	}
}

func TestSanitize(t *testing.T) {
	g := NewGuard(GuardConfig{})
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3} {
		if _, err := g.Sanitize("bn:t", bad, 1, 100); err == nil {
			t.Errorf("Sanitize(%v) accepted", bad)
		}
	}
	if g.Stats().Invalid != 4 {
		t.Errorf("invalid = %d, want 4", g.Stats().Invalid)
	}
	if v, err := g.Sanitize("bn:t", 1e12, 1, 100); err != nil || v != 100 {
		t.Errorf("clamp high = %v, %v", v, err)
	}
	if v, err := g.Sanitize("bn:t", 0.2, 1, 100); err != nil || v != 1 {
		t.Errorf("clamp low = %v, %v", v, err)
	}
	if g.Stats().Clamped != 2 {
		t.Errorf("clamped = %d, want 2", g.Stats().Clamped)
	}
	if v, err := g.Sanitize("bn:t", 42, 1, 100); err != nil || v != 42 {
		t.Errorf("in-range = %v, %v", v, err)
	}
}
