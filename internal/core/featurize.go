package core

import (
	"fmt"

	"bytecard/internal/catalog"
	"bytecard/internal/engine"
	"bytecard/internal/expr"
	"bytecard/internal/obs"
	"bytecard/internal/sqlparse"
	"bytecard/internal/storage"
)

// FeatureVector is the featurization product the Inference Engine's
// estimate interface consumes: the analyzed, bound form of a query. The
// SQL path (featurizeSQLQuery) exists for fast proof-of-concept
// integration of new models; the AST path (featurizeAST) extracts the same
// features from the analyzer's tree without re-parsing, which is how the
// production integration calls it.
type FeatureVector struct {
	query *engine.Query
}

// Query exposes the underlying analyzed query.
func (f *FeatureVector) Query() *engine.Query { return f.query }

// Featurizer builds feature vectors against one database and schema.
type Featurizer struct {
	analyzer *engine.Engine
}

// NewFeaturizer creates a featurizer. The schema may be nil.
func NewFeaturizer(db *storage.Database, schema *catalog.Schema) *Featurizer {
	return &Featurizer{analyzer: engine.New(db, schema, engine.HeuristicEstimator{})}
}

// FeaturizeSQLQuery parses and featurizes a SQL string.
func (f *Featurizer) FeaturizeSQLQuery(sql string) (*FeatureVector, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return f.FeaturizeAST(stmt)
}

// FeaturizeAST featurizes an already-parsed statement.
func (f *Featurizer) FeaturizeAST(stmt *sqlparse.SelectStmt) (*FeatureVector, error) {
	q, err := f.analyzer.Analyze(stmt)
	if err != nil {
		return nil, err
	}
	return &FeatureVector{query: q}, nil
}

// Estimate returns the COUNT cardinality of the featurized query. Unlike
// the engine.CardEstimator methods, it surfaces model errors instead of
// silently falling back, so callers (e.g. the Model Monitor) can
// distinguish model failure from a poor estimate.
func (e *Estimator) Estimate(fv *FeatureVector) (float64, error) {
	q := fv.query
	if len(q.Tables) == 1 {
		return e.countSingle(q.Tables[0])
	}
	fj := e.Infer.FactorJoin()
	if fj == nil {
		return 0, fmt.Errorf("core: no FactorJoin model loaded")
	}
	est := e.strict().EstimateJoin(q.Tables, q.Joins)
	if est < 0 {
		return 0, fmt.Errorf("core: join estimation failed")
	}
	return est, nil
}

// strict returns a view whose fallback fails loudly; the original
// estimator is left untouched, keeping concurrent query threads safe. The
// guard, registry, and vector cache are shared so probe traffic sees the
// same protections (and feeds the same guard counters and breakers) as
// production traffic; the request counters are private so probes don't
// inflate the production call/fallback totals.
func (e *Estimator) strict() *Estimator {
	view := *e
	view.Fallback = errorFallback{}
	view.Metrics = obs.NewEstimatorMetrics()
	return &view
}

// EstimateNDV returns the COUNT-DISTINCT estimate for the featurized
// query's first COUNT DISTINCT aggregate (or its GROUP BY keys when no
// explicit distinct aggregate exists).
func (e *Estimator) EstimateNDV(fv *FeatureVector) (float64, error) {
	target, err := ndvTarget(fv.query)
	if err != nil {
		return 0, err
	}
	if e.Infer.RBX() == nil {
		return 0, fmt.Errorf("core: no RBX model loaded")
	}
	est := e.strict().EstimateGroupNDV(target)
	if est < 0 {
		return 0, fmt.Errorf("core: NDV estimation fell back (missing sample or model)")
	}
	return est, nil
}

// CountWithTrace is the graceful sibling of Estimate for the Detail APIs:
// it estimates the featurized query's COUNT cardinality through the same
// degradation ladder the optimizer uses — model failures fall back to the
// traditional estimator instead of erroring — while recording every step
// into tr. The returned value is always usable; tr tells the caller who
// produced it and what went wrong on the way.
func (e *Estimator) CountWithTrace(fv *FeatureVector, tr *obs.Trace) float64 {
	view := e.traced(tr)
	q := fv.query
	if len(q.Tables) == 1 {
		return view.EstimateFilter(q.Tables[0])
	}
	return view.EstimateJoin(q.Tables, q.Joins)
}

// NDVWithTrace is the graceful sibling of EstimateNDV: the query's first
// COUNT DISTINCT aggregate (or its GROUP BY keys) is estimated with
// fallback instead of hard failure, recording every step into tr. It
// errors only when the query has no distinct aggregate or grouping.
func (e *Estimator) NDVWithTrace(fv *FeatureVector, tr *obs.Trace) (float64, error) {
	target, err := ndvTarget(fv.query)
	if err != nil {
		return 0, err
	}
	return e.traced(tr).EstimateGroupNDV(target), nil
}

// ndvTarget rewrites COUNT(DISTINCT cols) into an equivalent group-NDV
// request, or returns the query unchanged when it already groups.
func ndvTarget(q *engine.Query) (*engine.Query, error) {
	for _, agg := range q.Aggs {
		if agg.Kind == engine.AggCountDistinct {
			clone := *q
			clone.GroupBy = agg.Cols
			return &clone, nil
		}
	}
	if len(q.GroupBy) == 0 {
		return nil, fmt.Errorf("core: query has no distinct aggregate or grouping")
	}
	return q, nil
}

// errorFallback marks fallback paths as hard failures for the strict
// featurization API; its sentinel value (-1) is detected by Estimate.
type errorFallback struct{}

func (errorFallback) Name() string                                                 { return "error" }
func (errorFallback) EstimateFilter(*engine.QueryTable) float64                    { return -1 }
func (errorFallback) EstimateConj(*engine.QueryTable, []expr.Pred) float64         { return -1 }
func (errorFallback) EstimateJoin([]*engine.QueryTable, []engine.JoinCond) float64 { return -1 }
func (errorFallback) EstimateGroupNDV(*engine.Query) float64                       { return -1 }
