package bench

import (
	"math"
	"testing"

	"bytecard/internal/rbx"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	return Config{
		Scale:      0.01,
		Seed:       3,
		ProbeCount: 20,
		SampleRows: 2000,
		RBX:        rbx.TrainConfig{Columns: 100, Epochs: 5, MaxPop: 10000, Seed: 3},
	}
}

var cachedEnv *Env

func imdbEnv(t *testing.T) *Env {
	t.Helper()
	if cachedEnv == nil {
		env, err := NewEnv("imdb", tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		cachedEnv = env
	}
	return cachedEnv
}

func meanLog(errors []float64) float64 {
	var s float64
	for _, e := range errors {
		s += math.Log(e)
	}
	return s / float64(len(errors))
}

func TestQErrorExperimentShape(t *testing.T) {
	env := imdbEnv(t)
	trad, err := env.Table1()
	if err != nil {
		t.Fatal(err)
	}
	learned, err := env.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(trad) != 2 || len(learned) != 2 {
		t.Fatalf("rows: trad=%d learned=%d", len(trad), len(learned))
	}
	for _, rows := range [][]QErrorRow{trad, learned} {
		for _, r := range rows {
			if r.Summary.Count == 0 || r.Summary.Count > env.Cfg.ProbeCount {
				t.Errorf("%s/%s: %d probes, want <= %d non-empty", r.Method, r.Kind, r.Summary.Count, env.Cfg.ProbeCount)
			}
			for _, q := range r.Errors {
				if q < 1 {
					t.Errorf("%s/%s: q-error %g below theoretical floor", r.Method, r.Kind, q)
				}
			}
		}
	}
	// The headline shape: learned COUNT estimation beats traditional on
	// the geometric mean of Q-errors.
	if meanLog(learned[0].Errors) > meanLog(trad[0].Errors) {
		t.Errorf("learned COUNT q-errors (geo-mean %g) should beat traditional (%g)",
			math.Exp(meanLog(learned[0].Errors)), math.Exp(meanLog(trad[0].Errors)))
	}
}

func TestTrainingExperiment(t *testing.T) {
	env := imdbEnv(t)
	rows, err := env.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 methods", len(rows))
	}
	byMethod := map[string]TrainingRow{}
	for _, r := range rows {
		if r.TrainSeconds <= 0 || r.ModelBytes <= 0 {
			t.Errorf("method %s has empty cost: %+v", r.Method, r)
		}
		byMethod[r.Method] = r
	}
	// Shape: DeepDB (denormalized) must be bigger than ByteCard's models.
	if byMethod["DeepDB"].ModelBytes <= byMethod["ByteCard(BN+FactorJoin)"].ModelBytes/4 {
		t.Logf("model sizes: DeepDB=%d ByteCard=%d", byMethod["DeepDB"].ModelBytes, byMethod["ByteCard(BN+FactorJoin)"].ModelBytes)
	}
}

func TestFigure5Latency(t *testing.T) {
	env := imdbEnv(t)
	rows, err := env.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sawPeak bool
	for _, r := range rows {
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("%s: quantiles inverted: %+v", r.Method, r)
		}
		if r.N99 > 1+1e-9 {
			t.Errorf("%s: normalized P99 = %g > 1", r.Method, r.N99)
		}
		if r.N99 > 1-1e-9 {
			sawPeak = true
		}
	}
	if !sawPeak {
		t.Error("one method must define the normalization peak")
	}
}

func TestFigure7Distributions(t *testing.T) {
	env := imdbEnv(t)
	rows, err := env.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Errors) == 0 || len(r.Errors) > len(env.Hybrid.Queries) {
			t.Errorf("%s: %d errors for %d queries", r.Method, len(r.Errors), len(env.Hybrid.Queries))
		}
		s := sortedCopy(r.Errors)
		if s[0] < 1 {
			t.Errorf("%s: q-error %g below floor", r.Method, s[0])
		}
	}
}

func TestTable5Stats(t *testing.T) {
	env := imdbEnv(t)
	s, err := env.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if s.Queries != 100 {
		t.Errorf("queries = %d, want 100", s.Queries)
	}
	if s.MinTables < 2 || s.MaxTables > 5 {
		t.Errorf("table range [%d,%d], want within [2,5]", s.MinTables, s.MaxTables)
	}
	if s.JoinTemplates < 5 {
		t.Errorf("join templates = %d, suspiciously few", s.JoinTemplates)
	}
	if s.MaxCard <= s.MinCard {
		t.Errorf("cardinality range [%g, %g]", s.MinCard, s.MaxCard)
	}
}

func TestTable6ModelDetails(t *testing.T) {
	env := imdbEnv(t)
	rows := env.Table6()
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Method] = true
		if r.SizeBytes <= 0 {
			t.Errorf("%s size = %d", r.Method, r.SizeBytes)
		}
	}
	if !seen["BN"] || !seen["FactorJoin"] {
		t.Errorf("missing model kinds: %v", seen)
	}
}

func TestFigure6bResizeShape(t *testing.T) {
	rows, err := Figure6b(tinyConfig(), []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var presized, cold int64
	for _, r := range rows {
		if r.Method == "bytecard" {
			presized = r.Resizes
		} else {
			cold = r.Resizes
		}
	}
	if presized > cold {
		t.Errorf("presized resizes %d > cold-start %d", presized, cold)
	}
}

func TestEnvEstimatorDispatch(t *testing.T) {
	env := imdbEnv(t)
	for _, m := range Methods() {
		if _, err := env.Estimator(m); err != nil {
			t.Errorf("method %s: %v", m, err)
		}
	}
	if _, err := env.Estimator("nope"); err == nil {
		t.Error("unknown method must error")
	}
	if len(Datasets()) != 3 {
		t.Error("datasets list wrong")
	}
}

// TestEstimatorsAgreeOnHybridResults runs hybrid workload queries under
// every estimator: optimizer decisions (join order, reader strategy,
// presizing) may differ, but results must be identical.
func TestEstimatorsAgreeOnHybridResults(t *testing.T) {
	env := imdbEnv(t)
	limit := 20
	if limit > len(env.Hybrid.Queries) {
		limit = len(env.Hybrid.Queries)
	}
	ref, err := env.Engine("heuristic")
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range Methods() {
		exec, err := env.Engine(method)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range env.Hybrid.Queries[:limit] {
			want, err := ref.Run(q.SQL)
			if err != nil {
				t.Fatalf("reference failed on %s: %v", q.SQL, err)
			}
			got, err := exec.Run(q.SQL)
			if err != nil {
				t.Fatalf("%s failed on %s: %v", method, q.SQL, err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("%s: %q returned %d rows, want %d", method, q.SQL, len(got.Rows), len(want.Rows))
			}
			for i := range want.Rows {
				for j := range want.Rows[i] {
					a, b := got.Rows[i][j].AsFloat(), want.Rows[i][j].AsFloat()
					if d := a - b; d > 1e-6 || d < -1e-6 {
						t.Fatalf("%s: %q cell [%d][%d]: %v vs %v", method, q.SQL, i, j, got.Rows[i][j], want.Rows[i][j])
					}
				}
			}
		}
	}
}

// TestByteCardFewestFallbacksOnHybrid verifies the trained system answers
// hybrid planning almost entirely from learned models.
func TestByteCardFewestFallbacksOnHybrid(t *testing.T) {
	env := imdbEnv(t)
	exec, err := env.Engine("bytecard")
	if err != nil {
		t.Fatal(err)
	}
	before := env.ByteCard.Fallbacks()
	calls := env.ByteCard.Calls()
	for _, q := range env.Hybrid.Queries[:30] {
		if _, err := exec.Run(q.SQL); err != nil {
			t.Fatal(err)
		}
	}
	newCalls := env.ByteCard.Calls() - calls
	newFallbacks := env.ByteCard.Fallbacks() - before
	if newCalls == 0 {
		t.Fatal("no estimator calls recorded")
	}
	if float64(newFallbacks) > 0.1*float64(newCalls) {
		t.Errorf("fallbacks %d of %d calls (>10%%)", newFallbacks, newCalls)
	}
}
