package bench

import (
	"fmt"
	"os"
	"sort"
	"time"

	"bytecard/internal/bn"
	"bytecard/internal/cardinal"
	"bytecard/internal/datagen"
	"bytecard/internal/engine"
	"bytecard/internal/mscn"
	"bytecard/internal/residual"
	"bytecard/internal/spn"
	"bytecard/internal/sqlparse"
	"bytecard/internal/workload"
)

func tmpDir() string { return os.TempDir() }

// estimateCount routes a COUNT probe through the estimator the way the
// optimizer would: single tables via EstimateFilter, joins via EstimateJoin.
func estimateCount(est engine.CardEstimator, q *engine.Query) float64 {
	if len(q.Tables) == 1 {
		return est.EstimateFilter(q.Tables[0])
	}
	return est.EstimateJoin(q.Tables, q.Joins)
}

// estimateNDV rewrites a COUNT DISTINCT probe into a group-NDV request.
func estimateNDV(est engine.CardEstimator, q *engine.Query) float64 {
	target := *q
	for _, agg := range q.Aggs {
		if agg.Kind == engine.AggCountDistinct {
			target.GroupBy = agg.Cols
			break
		}
	}
	return est.EstimateGroupNDV(&target)
}

// QErrorRow is one row of Tables 1/2 (and the Figure 7 distributions).
type QErrorRow struct {
	Dataset string
	Method  string
	// Kind is "COUNT" or "NDV".
	Kind    string
	Summary cardinal.Summary
	// Errors holds the raw Q-error distribution.
	Errors []float64
}

// QErrors runs the COUNT and NDV probe workloads against one estimator.
func (e *Env) QErrors(method string) ([]QErrorRow, error) {
	est, err := e.Estimator(method)
	if err != nil {
		return nil, err
	}
	counts, err := workload.CountProbes(e.DS, e.Cfg.ProbeCount, e.Cfg.Seed+5)
	if err != nil {
		return nil, err
	}
	ndvs, err := workload.NDVProbes(e.DS, e.Cfg.ProbeCount, e.Cfg.Seed+6)
	if err != nil {
		return nil, err
	}
	countRow := QErrorRow{Dataset: e.DS.Name, Method: method, Kind: "COUNT"}
	for _, probe := range counts.Queries {
		q, err := e.Truth.Analyze(sqlparse.MustParse(probe.SQL))
		if err != nil {
			return nil, err
		}
		truth, err := e.Truth.TrueCardinality(probe.SQL)
		if err != nil {
			return nil, err
		}
		if truth < 1 {
			continue // Q-error is undefined for empty results
		}
		countRow.Errors = append(countRow.Errors, cardinal.QError(estimateCount(est, q), truth))
	}
	countRow.Summary = cardinal.Summarize(countRow.Errors)

	ndvRow := QErrorRow{Dataset: e.DS.Name, Method: method, Kind: "NDV"}
	for _, probe := range ndvs.Queries {
		q, err := e.Truth.Analyze(sqlparse.MustParse(probe.SQL))
		if err != nil {
			return nil, err
		}
		res, err := e.Truth.Run(probe.SQL)
		if err != nil {
			return nil, err
		}
		truth, err := res.ScalarInt()
		if err != nil {
			return nil, err
		}
		if truth < 1 {
			continue // Q-error is undefined for empty results
		}
		ndvRow.Errors = append(ndvRow.Errors, cardinal.QError(estimateNDV(est, q), float64(truth)))
	}
	ndvRow.Summary = cardinal.Summarize(ndvRow.Errors)
	return []QErrorRow{countRow, ndvRow}, nil
}

// Table1 reports traditional-estimator Q-errors (sketch-based, the
// warehouse's original estimator).
func (e *Env) Table1() ([]QErrorRow, error) { return e.QErrors("sketch") }

// Table2 reports ByteCard's learned-estimator Q-errors.
func (e *Env) Table2() ([]QErrorRow, error) { return e.QErrors("bytecard") }

// TrainingRow is one cell group of Table 3.
type TrainingRow struct {
	Method       string
	Dataset      string
	TrainSeconds float64
	ModelBytes   int64
}

// Table3 trains the four comparison methods and reports cost and size.
// MSCN's training time excludes true-cardinality labelling, matching the
// paper's accounting (which still concludes query-driven labelling is the
// impractical part).
func (e *Env) Table3() ([]TrainingRow, error) {
	var rows []TrainingRow

	// MSCN: label a training workload by execution, then train.
	probes, err := workload.CountProbes(e.DS, 200, e.Cfg.Seed+11)
	if err != nil {
		return nil, err
	}
	feat, queries, err := e.mscnWorkload(probes)
	if err != nil {
		return nil, err
	}
	model := mscn.New(feat, e.Cfg.Seed+12)
	if err := model.Train(queries, mscn.TrainConfig{Epochs: 25, Seed: e.Cfg.Seed + 13}); err != nil {
		return nil, err
	}
	rows = append(rows, TrainingRow{Method: "MSCN", Dataset: e.DS.Name, TrainSeconds: model.TrainSeconds, ModelBytes: model.SizeBytes()})

	// DeepDB: denormalized join sample + SPN (denormalization charged to
	// training, as the paper does).
	spnStart := time.Now()
	cols, data, err := spn.Denormalize(e.DS.DB, e.DS.Schema.JoinPatterns(), 20000, e.Cfg.Seed+14)
	if err != nil {
		return nil, err
	}
	spnModel, err := spn.Train(cols, data, spn.TrainConfig{Seed: e.Cfg.Seed + 15})
	if err != nil {
		return nil, err
	}
	rows = append(rows, TrainingRow{Method: "DeepDB", Dataset: e.DS.Name, TrainSeconds: time.Since(spnStart).Seconds(), ModelBytes: spnModel.SizeBytes()})

	// BayesCard: Bayesian network over the same denormalized sample (its
	// published design denormalizes for joins).
	bcStart := time.Now()
	colMajor := make([][]float64, len(cols))
	for c := range cols {
		colMajor[c] = make([]float64, len(data))
		for r := range data {
			colMajor[c][r] = data[r][c]
		}
	}
	bcModel, err := bn.Train(bn.TrainConfig{
		Table: e.DS.Name + "-denorm", ColNames: cols, Sample: colMajor,
		Rows: float64(len(data)), MaxBins: 32,
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, TrainingRow{Method: "BayesCard", Dataset: e.DS.Name, TrainSeconds: time.Since(bcStart).Seconds(), ModelBytes: bcModel.SizeBytes()})

	// ByteCard: per-table BNs + FactorJoin buckets, straight from the
	// ModelForge training report (no denormalization, no labelling).
	var bcSeconds float64
	var bcBytes int64
	for _, m := range e.Report.Models {
		if m.Kind == "rbx" {
			continue // workload-independent, trained once globally
		}
		bcSeconds += m.TrainSeconds
		bcBytes += m.SizeBytes
	}
	rows = append(rows, TrainingRow{Method: "ByteCard(BN+FactorJoin)", Dataset: e.DS.Name, TrainSeconds: bcSeconds, ModelBytes: bcBytes})
	return rows, nil
}

// mscnWorkload featurizes and labels a probe workload for MSCN training.
func (e *Env) mscnWorkload(probes workload.Workload) (*mscn.Featurizer, []mscn.Query, error) {
	feat := &mscn.Featurizer{ColMin: map[string]float64{}, ColMax: map[string]float64{}}
	for _, name := range e.DS.DB.TableNames() {
		feat.Tables = append(feat.Tables, name)
		t := e.DS.DB.Table(name)
		for i := 0; i < t.NumCols(); i++ {
			col := t.Col(i)
			if !col.Kind().Scalar() {
				continue
			}
			qc := name + "." + col.Name()
			feat.Columns = append(feat.Columns, qc)
			if t.NumRows() > 0 {
				lo, hi := col.Numeric(0), col.Numeric(0)
				for r := 1; r < t.NumRows(); r++ {
					v := col.Numeric(r)
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				feat.ColMin[qc], feat.ColMax[qc] = lo, hi
			}
		}
	}
	for _, p := range e.DS.Schema.JoinPatterns() {
		feat.Joins = append(feat.Joins, mscn.CanonicalJoin(p.Left.Table, p.Left.Column, p.Right.Table, p.Right.Column))
	}
	var queries []mscn.Query
	for _, probe := range probes.Queries {
		q, err := e.Truth.Analyze(sqlparse.MustParse(probe.SQL))
		if err != nil {
			return nil, nil, err
		}
		truth, err := e.Truth.TrueCardinality(probe.SQL)
		if err != nil {
			return nil, nil, err
		}
		mq := mscn.Query{Card: truth}
		for _, t := range q.Tables {
			mq.Tables = append(mq.Tables, t.Name)
			if t.Filter == nil {
				continue
			}
			for _, pred := range t.Filter.Leaves() {
				col := t.Name + "." + pred.Col
				v, _ := t.Table.ColByName(pred.Col).EncodeDatum(pred.Val)
				mq.Preds = append(mq.Preds, mscn.Pred{
					Column: col, Op: int(pred.Op), Value: feat.Normalize(col, v),
				})
			}
		}
		for _, j := range q.Joins {
			lt, rt := q.TableByBinding(j.LeftTab), q.TableByBinding(j.RightTab)
			mq.Joins = append(mq.Joins, mscn.CanonicalJoin(lt.Name, j.LeftCol, rt.Name, j.RightCol))
		}
		queries = append(queries, mq)
	}
	return feat, queries, nil
}

// LatencyRow is one series of Figure 5: per-method latency quantiles over a
// hybrid workload, in milliseconds and normalized to the slowest value in
// the figure.
type LatencyRow struct {
	Workload             string
	Method               string
	P50, P75, P90, P99   float64 // milliseconds
	N50, N75, N90, N99   float64 // normalized 0..1
	TotalSeconds         float64
	EstimatorPlanSeconds float64
}

// Figure5 executes the hybrid workload end to end under each estimator and
// reports latency quantiles.
func (e *Env) Figure5() ([]LatencyRow, error) {
	var rows []LatencyRow
	var peak float64
	for _, method := range Methods() {
		exec, err := e.Engine(method)
		if err != nil {
			return nil, err
		}
		var lats []float64
		var total, plan time.Duration
		for _, q := range e.Hybrid.Queries {
			// Two runs, keeping the faster one: scheduling noise would
			// otherwise dominate the tail quantiles at bench scale.
			var best time.Duration
			var bestPlan time.Duration
			for rep := 0; rep < 2; rep++ {
				res, err := exec.Run(q.SQL)
				if err != nil {
					return nil, fmt.Errorf("bench: %s on %q: %w", method, q.SQL, err)
				}
				d := res.Metrics.PlanDuration + res.Metrics.ExecDuration
				if rep == 0 || d < best {
					best = d
					bestPlan = res.Metrics.PlanDuration
				}
			}
			lats = append(lats, float64(best.Microseconds())/1000)
			total += best
			plan += bestPlan
		}
		row := LatencyRow{
			Workload:             e.Hybrid.Name,
			Method:               method,
			P50:                  cardinal.Quantile(lats, 0.50),
			P75:                  cardinal.Quantile(lats, 0.75),
			P90:                  cardinal.Quantile(lats, 0.90),
			P99:                  cardinal.Quantile(lats, 0.99),
			TotalSeconds:         total.Seconds(),
			EstimatorPlanSeconds: plan.Seconds(),
		}
		if row.P99 > peak {
			peak = row.P99
		}
		rows = append(rows, row)
	}
	for i := range rows {
		rows[i].N50 = rows[i].P50 / peak
		rows[i].N75 = rows[i].P75 / peak
		rows[i].N90 = rows[i].P90 / peak
		rows[i].N99 = rows[i].P99 / peak
	}
	return rows, nil
}

// IORow is one point of Figure 6a: blocks read at one dataset scale.
type IORow struct {
	Scale  float64
	Method string
	Blocks int64
	Bytes  int64
}

// Figure6a sweeps dataset scales measuring read I/O over the STATS-Hybrid
// COUNT queries. Alongside the three estimators, a "naive" configuration
// (single-stage readers, no sideways information passing) quantifies how
// much I/O the estimate-driven reading saves at each scale. Each scale
// builds a fresh environment.
func Figure6a(cfg Config, scales []float64) ([]IORow, error) {
	var rows []IORow
	for _, s := range scales {
		sub := cfg
		sub.Scale = s
		env, err := NewEnv("stats", sub)
		if err != nil {
			return nil, err
		}
		run := func(method string, naive bool) (IORow, error) {
			exec, err := env.Engine(method)
			if err != nil {
				return IORow{}, err
			}
			label := method
			if naive {
				exec.ForceReader = "single-stage"
				exec.DisableSIP = true
				label = "naive"
			}
			var blocks, bytes int64
			for _, q := range env.Hybrid.Queries {
				if q.Kind != workload.KindCount {
					continue
				}
				res, err := exec.Run(q.SQL)
				if err != nil {
					return IORow{}, err
				}
				blocks += res.Metrics.IO.BlocksRead()
				bytes += res.Metrics.IO.BytesRead()
			}
			return IORow{Scale: s, Method: label, Blocks: blocks, Bytes: bytes}, nil
		}
		naiveRow, err := run("heuristic", true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, naiveRow)
		for _, method := range Methods() {
			row, err := run(method, false)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ResizeRow is one point of Figure 6b: aggregation hash-table resizes at
// one dataset scale.
type ResizeRow struct {
	Scale   float64
	Method  string // "bytecard" or "no-presize"
	Resizes int64
}

// Figure6b sweeps AEOLUS scales measuring hash-table resize counts during
// the aggregation queries, with and without ByteCard's RBX presizing.
func Figure6b(cfg Config, scales []float64) ([]ResizeRow, error) {
	var rows []ResizeRow
	for _, s := range scales {
		sub := cfg
		sub.Scale = s
		env, err := NewEnv("aeolus", sub)
		if err != nil {
			return nil, err
		}
		for _, mode := range []string{"bytecard", "no-presize"} {
			exec, err := env.Engine("bytecard")
			if err != nil {
				return nil, err
			}
			exec.DisableNDVPresize = mode == "no-presize"
			var resizes int64
			for _, q := range env.Hybrid.Queries {
				if q.Kind != workload.KindAgg {
					continue
				}
				res, err := exec.Run(q.SQL)
				if err != nil {
					return nil, err
				}
				resizes += res.Metrics.HashResizes
			}
			rows = append(rows, ResizeRow{Scale: s, Method: mode, Resizes: resizes})
		}
	}
	return rows, nil
}

// Figure7 reports the full Q-error distribution per method over the hybrid
// workload's COUNT queries (the violin plots).
func (e *Env) Figure7() ([]QErrorRow, error) {
	var rows []QErrorRow
	type probe struct {
		q     *engine.Query
		truth float64
	}
	var probes []probe
	for _, wq := range e.Hybrid.Queries {
		sql := workload.CountForm(wq.SQL)
		q, err := e.Truth.Analyze(sqlparse.MustParse(sql))
		if err != nil {
			return nil, err
		}
		truth, err := e.Truth.TrueCardinality(sql)
		if err != nil {
			return nil, err
		}
		if truth < 1 {
			continue // Q-error is undefined for empty results
		}
		probes = append(probes, probe{q: q, truth: truth})
	}
	for _, method := range Methods() {
		est, err := e.Estimator(method)
		if err != nil {
			return nil, err
		}
		row := QErrorRow{Dataset: e.DS.Name, Method: method, Kind: "COUNT"}
		for _, p := range probes {
			row.Errors = append(row.Errors, cardinal.QError(estimateCount(est, p.q), p.truth))
		}
		row.Summary = cardinal.Summarize(row.Errors)
		rows = append(rows, row)
	}
	return rows, nil
}

// Table5 computes the workload statistics.
func (e *Env) Table5() (workload.Stats, error) {
	return workload.ComputeStats(e.Hybrid, e.Truth)
}

// ModelDetailRow is one row of Table 6.
type ModelDetailRow struct {
	Dataset      string
	Method       string
	SizeBytes    int64
	TrainSeconds float64
}

// Table6 reports per-dataset model details from the training report.
func (e *Env) Table6() []ModelDetailRow {
	agg := map[string]*ModelDetailRow{}
	order := []string{"BN", "FactorJoin", "RBX"}
	name := func(kind string) string {
		switch kind {
		case "bn":
			return "BN"
		case "factorjoin":
			return "FactorJoin"
		default:
			return "RBX"
		}
	}
	for _, m := range e.Report.Models {
		key := name(string(m.Kind))
		row, ok := agg[key]
		if !ok {
			row = &ModelDetailRow{Dataset: e.DS.Name, Method: key}
			agg[key] = row
		}
		row.SizeBytes += m.SizeBytes
		row.TrainSeconds += m.TrainSeconds
	}
	var out []ModelDetailRow
	for _, k := range order {
		if row, ok := agg[k]; ok {
			out = append(out, *row)
		}
	}
	return out
}

// DriftRow is one mode of the residual-drift experiment: the q-error
// summary of stale models estimating against drifted data, with and
// without the online residual corrector.
type DriftRow struct {
	Dataset string
	// Mode is "uncorrected" or "corrected".
	Mode    string
	Summary cardinal.Summary
	Errors  []float64
}

// DriftExperiment trains ByteCard's models on a clean dataset, regenerates
// the same dataset with the drift knob on (foreign-key skew and
// cross-column correlations shift mid-stream; see datagen.Config.Drift),
// and measures COUNT-probe q-errors of the now-stale models against the
// drifted truth — first raw, then after a residual corrector has watched a
// few rounds of executed truth for the same query templates. The corrected
// row is the tentpole's "after" picture: accuracy clawed back online,
// without retraining a single model.
func DriftExperiment(dataset string, cfg Config) ([]DriftRow, error) {
	cfg.fill()
	env, err := NewEnv(dataset, cfg)
	if err != nil {
		return nil, err
	}
	cfg.logf("[%s] regenerating with mid-stream drift", dataset)
	drifted, err := datagen.ByName(dataset, datagen.Config{Scale: cfg.Scale, Seed: cfg.Seed, Drift: true})
	if err != nil {
		return nil, err
	}
	truthEng := engine.New(drifted.DB, drifted.Schema, engine.HeuristicEstimator{})
	probes, err := workload.CountProbes(drifted, cfg.ProbeCount, cfg.Seed+21)
	if err != nil {
		return nil, err
	}
	type item struct {
		q     *engine.Query
		truth float64
	}
	var items []item
	for _, p := range probes.Queries {
		q, err := truthEng.Analyze(sqlparse.MustParse(p.SQL))
		if err != nil {
			return nil, err
		}
		truth, err := truthEng.TrueCardinality(p.SQL)
		if err != nil {
			return nil, err
		}
		if truth < 1 {
			continue // Q-error is undefined for empty results
		}
		items = append(items, item{q: q, truth: truth})
	}
	measure := func(mode string) DriftRow {
		row := DriftRow{Dataset: dataset, Mode: mode}
		for _, it := range items {
			row.Errors = append(row.Errors, cardinal.QError(estimateCount(env.ByteCard, it.q), it.truth))
		}
		row.Summary = cardinal.Summarize(row.Errors)
		return row
	}

	env.ByteCard.Residual = nil
	before := measure("uncorrected")

	corr := residual.New(residual.Config{}, nil)
	env.ByteCard.Residual = corr
	defer func() { env.ByteCard.Residual = nil }()
	// Three rounds of executed-truth feedback: round one seeds each
	// template×magnitude bucket, round two lifts it past the
	// MinObservations floor, round three exercises the full loop (the
	// corrector observing its own already-corrected estimates).
	const rounds = 3
	for r := 0; r < rounds; r++ {
		for _, it := range items {
			est := estimateCount(env.ByteCard, it.q)
			corr.Observe(engine.TemplateKey(it.q.Tables, it.q.Joins), queryTableNames(it.q), est, it.truth)
		}
	}
	after := measure("corrected")
	return []DriftRow{before, after}, nil
}

// queryTableNames lists a query's deduped physical table names, sorted —
// the corrector's table-scoped invalidation identity.
func queryTableNames(q *engine.Query) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range q.Tables {
		if !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	sort.Strings(out)
	return out
}

// sortedCopy returns an ascending copy (test helper for distributions).
func sortedCopy(v []float64) []float64 {
	out := append([]float64(nil), v...)
	sort.Float64s(out)
	return out
}
