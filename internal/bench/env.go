// Package bench is the experiment harness: it prepares a full environment
// per dataset (synthetic data, hybrid workload, trained models, all three
// estimators) and regenerates every table and figure of the paper's
// evaluation section. Absolute numbers differ from the paper (its substrate
// is a 75-core production cluster at terabyte scale); the harness
// reproduces the *shape* of each result.
package bench

import (
	"fmt"
	"time"

	"bytecard/internal/cardinal"
	"bytecard/internal/core"
	"bytecard/internal/datagen"
	"bytecard/internal/engine"
	"bytecard/internal/loader"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
	"bytecard/internal/workload"
)

// Config scales the whole harness.
type Config struct {
	// Scale is the dataset scale factor (default 0.05: a few hundred
	// thousand rows across the three datasets — minutes, not hours).
	Scale float64
	// Seed drives every generator.
	Seed int64
	// BucketCount sizes join buckets (default 200, the paper's setting).
	BucketCount int
	// SampleRows caps BN training samples (default 8000).
	SampleRows int
	// ProbeCount sizes the Q-error probe workloads (default 60).
	ProbeCount int
	// RBX overrides NDV training (default: 400 columns, 12 epochs).
	RBX rbx.TrainConfig
	// StoreDir persists model artifacts; empty uses a temp dir.
	StoreDir string
	// Log receives progress lines when non-nil.
	Log func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.BucketCount <= 0 {
		c.BucketCount = 200
	}
	if c.SampleRows <= 0 {
		c.SampleRows = 8000
	}
	if c.ProbeCount <= 0 {
		c.ProbeCount = 60
	}
	if c.RBX.Columns == 0 {
		c.RBX = rbx.TrainConfig{Columns: 400, Epochs: 12, MaxPop: 50000, Seed: c.Seed + 9}
	}
}

func (c *Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Env is a prepared per-dataset environment.
type Env struct {
	Cfg    Config
	DS     *datagen.Dataset
	Hybrid workload.Workload

	Sketch   *cardinal.SketchEstimator
	Sample   *cardinal.SampleEstimator
	ByteCard *core.Estimator
	Infer    *core.InferenceEngine
	Forge    *modelforge.Service
	Report   *modelforge.Report

	// Truth executes queries for ground truth (estimator choice does not
	// affect results).
	Truth *engine.Engine

	// SetupSeconds records environment preparation time.
	SetupSeconds float64
}

// NewEnv generates the dataset, its hybrid workload, and all three
// estimators (training the learned models through the full ModelForge →
// store → loader pipeline).
func NewEnv(dataset string, cfg Config) (*Env, error) {
	cfg.fill()
	start := time.Now()
	cfg.logf("[%s] generating dataset (scale %.3g)", dataset, cfg.Scale)
	ds, err := datagen.ByName(dataset, datagen.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	env := &Env{Cfg: cfg, DS: ds}

	cfg.logf("[%s] generating hybrid workload", dataset)
	env.Hybrid, err = workload.ByName(ds, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	cfg.logf("[%s] building traditional estimators", dataset)
	env.Sketch = cardinal.NewSketchEstimator(ds.DB, cardinal.DefaultHistogramBuckets)
	// A 2%% sampling rate (clamped) keeps the sample baseline in its
	// realistic regime: a fixed absolute reservoir would cover whole
	// tables at bench scale and estimate nearly exactly.
	env.Sample = cardinal.NewSampleEstimatorRate(ds.DB, 0.02, 100, cardinal.DefaultSampleRows, cfg.Seed+2)

	cfg.logf("[%s] training ByteCard models", dataset)
	dir := cfg.StoreDir
	if dir == "" {
		dir = fmt.Sprintf("%s/bytecard-bench-%s-%d", tmpDir(), dataset, cfg.Seed)
	}
	store, err := modelstore.Open(dir)
	if err != nil {
		return nil, err
	}
	env.Forge = modelforge.New(dataset, ds.DB, ds.Schema, store, modelforge.Config{
		SampleRows:  cfg.SampleRows,
		BucketCount: cfg.BucketCount,
		RBX:         cfg.RBX,
		Seed:        cfg.Seed + 3,
	})
	env.Report, err = env.Forge.TrainAll()
	if err != nil {
		return nil, err
	}
	env.Infer = core.NewInferenceEngine(core.Options{})
	ld := loader.New(store, env.Infer)
	if _, err := ld.RefreshOnce(); err != nil {
		return nil, err
	}
	env.ByteCard = core.NewEstimator(env.Infer, env.Sketch)
	loader.LoadSamples(ds.DB, env.ByteCard, cfg.SampleRows, cfg.Seed+4)

	env.Truth = engine.New(ds.DB, ds.Schema, engine.HeuristicEstimator{})
	env.SetupSeconds = time.Since(start).Seconds()
	cfg.logf("[%s] environment ready in %.1fs", dataset, env.SetupSeconds)
	return env, nil
}

// Engine builds an execution engine driven by the named estimator
// ("sketch", "sample", "bytecard", "heuristic").
func (e *Env) Engine(method string) (*engine.Engine, error) {
	est, err := e.Estimator(method)
	if err != nil {
		return nil, err
	}
	return engine.New(e.DS.DB, e.DS.Schema, est), nil
}

// Estimator returns the named estimator.
func (e *Env) Estimator(method string) (engine.CardEstimator, error) {
	switch method {
	case "sketch":
		return e.Sketch, nil
	case "sample":
		return e.Sample, nil
	case "bytecard":
		return e.ByteCard, nil
	case "heuristic":
		return engine.HeuristicEstimator{}, nil
	default:
		return nil, fmt.Errorf("bench: unknown method %q", method)
	}
}

// Methods lists the estimators the paper compares.
func Methods() []string { return []string{"sketch", "sample", "bytecard"} }

// Datasets lists the evaluation datasets.
func Datasets() []string { return []string{"imdb", "stats", "aeolus"} }
