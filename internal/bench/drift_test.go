package bench

import "testing"

// TestDriftExperimentCorrectionImproves is the tentpole's acceptance bar:
// on a dataset whose distribution shifts mid-stream after the models were
// trained, a few rounds of executed-truth feedback through the residual
// corrector must strictly improve the P50 and P90 q-error over the stale
// uncorrected estimates.
func TestDriftExperimentCorrectionImproves(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 1 // toy's base sizes are already tiny
	cfg.ProbeCount = 30
	rows, err := DriftExperiment("toy", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "uncorrected" || rows[1].Mode != "corrected" {
		t.Fatalf("rows = %+v, want [uncorrected corrected]", rows)
	}
	before, after := rows[0], rows[1]
	if len(before.Errors) == 0 || len(before.Errors) != len(after.Errors) {
		t.Fatalf("error counts: before=%d after=%d", len(before.Errors), len(after.Errors))
	}
	for _, r := range rows {
		for _, q := range r.Errors {
			if q < 1 {
				t.Errorf("%s: q-error %g below theoretical floor", r.Mode, q)
			}
		}
	}
	t.Logf("uncorrected P50=%.3f P90=%.3f; corrected P50=%.3f P90=%.3f",
		before.Summary.P50, before.Summary.P90, after.Summary.P50, after.Summary.P90)
	if after.Summary.P50 >= before.Summary.P50 {
		t.Errorf("corrected P50 %.3f, want strictly below uncorrected %.3f",
			after.Summary.P50, before.Summary.P50)
	}
	if after.Summary.P90 >= before.Summary.P90 {
		t.Errorf("corrected P90 %.3f, want strictly below uncorrected %.3f",
			after.Summary.P90, before.Summary.P90)
	}
}
