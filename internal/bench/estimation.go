package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"bytecard/internal/bn"
	"bytecard/internal/cardinal"
	"bytecard/internal/core"
	"bytecard/internal/datagen"
	"bytecard/internal/engine"
	"bytecard/internal/loader"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
	"bytecard/internal/sqlparse"
)

// The estimation fast-path benchmark suite measures the three optimizations
// of the estimation hot path against their baseline implementations, which
// the codebase keeps alive precisely so the comparison stays honest:
//
//   - bn_prob: one BN inference through the pooled scratch (Context.Prob)
//     vs the fresh-allocation reference (Context.ProbNoScratch);
//   - join_dp_n{3,6,10}: the join-order DP planning an n-table query with
//     batched estimation fanned across workers vs the sequential per-subset
//     path (the batch interface hidden);
//   - plan_cache_hit: the same n=6 planning served as a warm template-cache
//     hit vs the full fresh DP;
//   - train_full: one full ModelForge pipeline with the training worker
//     pool vs a single worker (min of three interleaved runs, so allocator
//     and page-cache noise does not decide the ratio).
//
// EstimationSuite renders the result as an EstimationReport, persisted as
// BENCH_estimation.json at the repository root so regressions diff in code
// review.

// EstimationMeasure is one measured configuration.
type EstimationMeasure struct {
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// EstimationPair is one before/after benchmark: the baseline path and the
// fast path over identical work.
type EstimationPair struct {
	Name   string            `json:"name"`
	Before EstimationMeasure `json:"before"`
	After  EstimationMeasure `json:"after"`
	// Speedup is Before.NsPerOp / After.NsPerOp (>1 means faster).
	Speedup float64 `json:"speedup"`
	// AllocRatio is Before.AllocsPerOp / max(After.AllocsPerOp, 1).
	AllocRatio float64 `json:"alloc_ratio"`
	// BlocksBefore/BlocksAfter count the storage blocks one pass of the
	// probe set reads with the optimization off/on — deterministic, unlike
	// wall time, so block-I/O benches gate on BlockRatio (Before/After)
	// rather than Speedup. Zero for time-only benches.
	BlocksBefore int64   `json:"blocks_before,omitempty"`
	BlocksAfter  int64   `json:"blocks_after,omitempty"`
	BlockRatio   float64 `json:"block_ratio,omitempty"`
}

// EstimationReport is the serialized suite result.
type EstimationReport struct {
	GeneratedAt string           `json:"generated_at"`
	Smoke       bool             `json:"smoke"`
	Scale       float64          `json:"scale"`
	Parallelism int              `json:"parallelism"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Benches     []EstimationPair `json:"benches"`
}

// EstimationConfig controls the suite.
type EstimationConfig struct {
	// Smoke shrinks iteration counts and data so the suite finishes in
	// seconds — CI's compile-and-run gate, not a stable measurement.
	Smoke bool
	// Parallelism is the batched planner's worker count (default 4).
	Parallelism int
	// Seed drives data generation and training (default 1).
	Seed int64
	// Log receives progress lines when non-nil.
	Log func(format string, args ...any)
}

func (c *EstimationConfig) fill() {
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c *EstimationConfig) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// measure times iters calls of fn on the current goroutine, reading
// allocation deltas from runtime.MemStats. The counters are process-global,
// so fn must be the only allocation source while measuring (the suite runs
// single-threaded between setups).
func measure(iters int, fn func()) EstimationMeasure {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return EstimationMeasure{
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}
}

func pair(name string, before, after EstimationMeasure) EstimationPair {
	p := EstimationPair{Name: name, Before: before, After: after}
	if after.NsPerOp > 0 {
		p.Speedup = before.NsPerOp / after.NsPerOp
	}
	denom := after.AllocsPerOp
	if denom < 1 {
		denom = 1
	}
	p.AllocRatio = before.AllocsPerOp / denom
	return p
}

// wideBNModel trains a synthetic 8-column categorical BN — wide enough that
// per-node allocation dominates the fresh-allocation baseline.
func wideBNModel(seed int64) (*bn.Model, error) {
	const nCols, nRows = 8, 4000
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, nCols)
	names := make([]string, nCols)
	for c := range cols {
		cols[c] = make([]float64, nRows)
		names[c] = fmt.Sprintf("c%d", c)
	}
	for r := 0; r < nRows; r++ {
		base := float64(rng.Intn(5))
		for c := range cols {
			v := base
			if rng.Float64() > 0.7 {
				v = float64(rng.Intn(5))
			}
			cols[c][r] = v
		}
	}
	return bn.Train(bn.TrainConfig{Table: "wide", ColNames: names, Sample: cols, Laplace: 0.1})
}

// benchBNProb measures one BN inference, pooled vs fresh-allocation.
func benchBNProb(cfg *EstimationConfig) (EstimationPair, error) {
	m, err := wideBNModel(3)
	if err != nil {
		return EstimationPair{}, err
	}
	ctx, err := m.NewContext()
	if err != nil {
		return EstimationPair{}, err
	}
	// Soft evidence on the first column, shaped like a range predicate.
	weights := make([][]float64, len(m.Cols))
	ev := make([]float64, m.Cols[0].Bins())
	for b := range ev {
		if b%2 == 0 {
			ev[b] = 1
		} else {
			ev[b] = 0.25
		}
	}
	weights[0] = ev
	iters := 50000
	if cfg.Smoke {
		iters = 2000
	}
	ctx.Prob(weights) // warm the pool
	after := measure(iters, func() { ctx.Prob(weights) })
	before := measure(iters, func() { ctx.ProbNoScratch(weights) })
	return pair("bn_prob", before, after), nil
}

// seqEstimator hides EstimateJoinBatch, forcing the sequential DP path.
type seqEstimator struct{ engine.CardEstimator }

// estimationJoinQueries are the DP macro-bench queries at n=3, 6, and 10
// tables (n=10 via alias self-joins around the title hub).
var estimationJoinQueries = []struct {
	name string
	sql  string
}{
	{"join_dp_n3", "SELECT COUNT(*) FROM title t, cast_info ci, movie_keyword mk WHERE ci.movie_id = t.id AND mk.movie_id = t.id AND t.production_year >= 1990"},
	{"join_dp_n6", "SELECT COUNT(*) FROM title t, cast_info ci, movie_keyword mk, movie_info mi, movie_companies mc, movie_info_idx mii " +
		"WHERE ci.movie_id = t.id AND mk.movie_id = t.id AND mi.movie_id = t.id AND mc.movie_id = t.id AND mii.movie_id = t.id"},
	{"join_dp_n10", "SELECT COUNT(*) FROM title t, cast_info c1, cast_info c2, movie_keyword k1, movie_keyword k2, movie_info i1, movie_info i2, movie_companies m1, movie_companies m2, movie_info_idx x1 " +
		"WHERE c1.movie_id = t.id AND c2.movie_id = t.id AND k1.movie_id = t.id AND k2.movie_id = t.id AND i1.movie_id = t.id AND i2.movie_id = t.id AND m1.movie_id = t.id AND m2.movie_id = t.id AND x1.movie_id = t.id"},
}

// estimationSystem wires the minimal trained planning stack: imdb data,
// ModelForge-trained BN/FactorJoin artifacts, and a core.Estimator over
// them (with a small RBX so training stays in bench budget).
func estimationSystem(cfg *EstimationConfig, scale float64) (*datagen.Dataset, *core.Estimator, error) {
	ds, err := datagen.ByName("imdb", datagen.Config{Scale: scale, Seed: cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.MkdirTemp("", "bytecard-estbench-*")
	if err != nil {
		return nil, nil, err
	}
	store, err := modelstore.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	forge := modelforge.New("imdb", ds.DB, ds.Schema, store, modelforge.Config{
		SampleRows: 4000, BucketCount: 64, Seed: cfg.Seed + 3,
		RBX: rbx.TrainConfig{Columns: 60, Epochs: 3, MaxPop: 8000, Seed: cfg.Seed + 9},
	})
	if _, err := forge.TrainAll(); err != nil {
		return nil, nil, err
	}
	infer := core.NewInferenceEngine(core.Options{})
	if _, err := loader.New(store, infer).RefreshOnce(); err != nil {
		return nil, nil, err
	}
	sketch := cardinal.NewSketchEstimator(ds.DB, cardinal.DefaultHistogramBuckets)
	est := core.NewEstimator(infer, sketch)
	loader.LoadSamples(ds.DB, est, 4000, cfg.Seed+4)
	return ds, est, nil
}

// benchJoinDP measures join-order planning latency, batched vs sequential,
// through the real ByteCard estimator.
func benchJoinDP(cfg *EstimationConfig) ([]EstimationPair, error) {
	scale := 0.05
	iters := map[string]int{"join_dp_n3": 300, "join_dp_n6": 60, "join_dp_n10": 15}
	if cfg.Smoke {
		scale = 0.02
		iters = map[string]int{"join_dp_n3": 10, "join_dp_n6": 3, "join_dp_n10": 1}
	}
	ds, est, err := estimationSystem(cfg, scale)
	if err != nil {
		return nil, err
	}
	batched := engine.New(ds.DB, ds.Schema, est)
	batched.Parallelism = cfg.Parallelism
	sequential := engine.New(ds.DB, ds.Schema, seqEstimator{est})
	sequential.Parallelism = cfg.Parallelism

	var out []EstimationPair
	for _, q := range estimationJoinQueries {
		stmt, err := sqlparse.Parse(q.sql)
		if err != nil {
			return nil, err
		}
		qb, err := batched.Analyze(stmt)
		if err != nil {
			return nil, err
		}
		qs, err := sequential.Analyze(stmt)
		if err != nil {
			return nil, err
		}
		// Warm the shared join-vector cache so both paths measure the DP,
		// not first-touch BN inference.
		if _, err := batched.Plan(qb); err != nil {
			return nil, err
		}
		if _, err := sequential.Plan(qs); err != nil {
			return nil, err
		}
		n := iters[q.name]
		after := measure(n, func() { _, _ = batched.Plan(qb) })
		before := measure(n, func() { _, _ = sequential.Plan(qs) })
		out = append(out, pair(q.name, before, after))
		cfg.logf("[estimation] %s: seq %.0fns/op, batched %.0fns/op", q.name, before.NsPerOp, after.NsPerOp)
	}

	cachePair, err := benchPlanCacheHit(cfg, ds, est)
	if err != nil {
		return nil, err
	}
	out = append(out, cachePair)
	return out, nil
}

// benchPlanCacheHit measures the n=6 query planned fresh (no plan cache,
// batched estimation — the best uncached path) vs served as a warm
// template-cache hit (normalize, decision lookup, replay).
func benchPlanCacheHit(cfg *EstimationConfig, ds *datagen.Dataset, est *core.Estimator) (EstimationPair, error) {
	sql := estimationJoinQueries[1].sql // join_dp_n6
	fresh := engine.New(ds.DB, ds.Schema, est)
	fresh.Parallelism = cfg.Parallelism
	cached := engine.New(ds.DB, ds.Schema, est)
	cached.Parallelism = cfg.Parallelism
	cached.PlanCache = engine.NewPlanCache(0)

	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return EstimationPair{}, err
	}
	qf, err := fresh.Analyze(stmt)
	if err != nil {
		return EstimationPair{}, err
	}
	qc, err := cached.Analyze(stmt)
	if err != nil {
		return EstimationPair{}, err
	}
	// Warm the join-vector cache on the fresh path and publish the template
	// on the cached one, so both measurements are steady-state.
	if _, err := fresh.Plan(qf); err != nil {
		return EstimationPair{}, err
	}
	if _, err := cached.Plan(qc); err != nil {
		return EstimationPair{}, err
	}
	freshIters, hitIters := 60, 20000
	if cfg.Smoke {
		freshIters, hitIters = 3, 500
	}
	after := measure(hitIters, func() { _, _ = cached.Plan(qc) })
	before := measure(freshIters, func() { _, _ = fresh.Plan(qf) })
	cfg.logf("[estimation] plan_cache_hit: fresh %.0fns/op, hit %.0fns/op", before.NsPerOp, after.NsPerOp)
	return pair("plan_cache_hit", before, after), nil
}

// benchTrain measures one full ModelForge pipeline with a single training
// worker vs the full pool.
func benchTrain(cfg *EstimationConfig) (EstimationPair, error) {
	scale := 2.0
	if cfg.Smoke {
		scale = 1.0
	}
	run := func(workers int) (EstimationMeasure, error) {
		ds := datagen.Toy(datagen.Config{Scale: scale, Seed: cfg.Seed})
		dir, err := os.MkdirTemp("", "bytecard-trainbench-*")
		if err != nil {
			return EstimationMeasure{}, err
		}
		store, err := modelstore.Open(dir)
		if err != nil {
			return EstimationMeasure{}, err
		}
		forge := modelforge.New("toy", ds.DB, ds.Schema, store, modelforge.Config{
			SampleRows: 4000, BucketCount: 64, Seed: cfg.Seed + 3, TrainWorkers: workers,
			RBX: rbx.TrainConfig{Columns: 60, Epochs: 3, MaxPop: 8000, Seed: cfg.Seed + 9},
		})
		var trainErr error
		m := measure(1, func() { _, trainErr = forge.TrainAll() })
		return m, trainErr
	}
	// With the effective-parallelism gate, a pool on a single-CPU runtime
	// resolves to exactly the single-worker configuration — same code path,
	// same artifacts. Measuring the two "sides" separately would only
	// measure run-to-run noise between identical runs (and on one long op
	// per side, 2% noise flips the ratio). Measure once, report the tie.
	if runtime.GOMAXPROCS(0) <= 1 {
		m, err := run(1)
		if err != nil {
			return EstimationPair{}, err
		}
		return pair("train_full", m, m), nil
	}
	// Min of three interleaved runs per side: training is one long op, so a
	// single GC pause or cold page cache on either side would decide the
	// ratio. Interleaving keeps ambient drift symmetric; min discards it.
	runs := 3
	if cfg.Smoke {
		runs = 1
	}
	var before, after EstimationMeasure
	for i := 0; i < runs; i++ {
		b, err := run(1)
		if err != nil {
			return EstimationPair{}, err
		}
		a, err := run(runtime.GOMAXPROCS(0))
		if err != nil {
			return EstimationPair{}, err
		}
		if i == 0 || b.NsPerOp < before.NsPerOp {
			before = b
		}
		if i == 0 || a.NsPerOp < after.NsPerOp {
			after = a
		}
	}
	return pair("train_full", before, after), nil
}

// benchScanPushdown measures the pushdown scan contract over the
// append-ordered timeseries dataset: identical windowed COUNT probes and a
// projection+LIMIT probe run with the contract on vs off. Wall time is
// reported, but the gated signal is total blocks read — deterministic for
// a fixed seed and scale, so the ratio cannot be decided by timer noise.
func benchScanPushdown(cfg *EstimationConfig) (EstimationPair, error) {
	scale, iters := 0.2, 30
	if cfg.Smoke {
		scale, iters = 0.05, 2
	}
	ds, err := datagen.ByName("timeseries", datagen.Config{Scale: scale, Seed: cfg.Seed})
	if err != nil {
		return EstimationPair{}, err
	}
	readings := ds.DB.Table("readings")
	tsCol := readings.ColByName("ts")
	n := readings.NumRows()
	// Window bounds come from live rows at fixed fractions of the
	// append-ordered stream, so every window is populated and ~1% wide.
	tsAt := func(frac float64) int64 { return tsCol.Value(int(frac * float64(n-1))).I }
	queries := []string{
		fmt.Sprintf("SELECT COUNT(*) FROM readings WHERE readings.ts >= %d AND readings.ts <= %d",
			tsAt(0.40), tsAt(0.41)),
		fmt.Sprintf("SELECT COUNT(*) FROM readings WHERE readings.ts >= %d AND readings.ts <= %d AND readings.metric = 2",
			tsAt(0.70), tsAt(0.71)),
		fmt.Sprintf("SELECT host FROM readings WHERE readings.ts >= %d AND readings.ts <= %d LIMIT 50",
			tsAt(0.90), tsAt(0.91)),
	}
	newEngine := func(pushdown int) *engine.Engine {
		e := engine.New(ds.DB, ds.Schema, engine.HeuristicEstimator{})
		e.Pushdown = pushdown
		return e
	}
	on, off := newEngine(1), newEngine(-1)
	blocksFor := func(e *engine.Engine) (int64, error) {
		var total int64
		for _, sql := range queries {
			res, err := e.Run(sql)
			if err != nil {
				return 0, fmt.Errorf("scan_pushdown probe %q: %w", sql, err)
			}
			total += res.Metrics.IO.BlocksRead()
		}
		return total, nil
	}
	blocksAfter, err := blocksFor(on)
	if err != nil {
		return EstimationPair{}, err
	}
	blocksBefore, err := blocksFor(off)
	if err != nil {
		return EstimationPair{}, err
	}
	after := measure(iters, func() { _, _ = blocksFor(on) })
	before := measure(iters, func() { _, _ = blocksFor(off) })
	p := pair("scan_pushdown", before, after)
	p.BlocksBefore, p.BlocksAfter = blocksBefore, blocksAfter
	if blocksAfter > 0 {
		p.BlockRatio = float64(blocksBefore) / float64(blocksAfter)
	}
	cfg.logf("[estimation] scan_pushdown: %d blocks off, %d blocks on (%.1fx)",
		blocksBefore, blocksAfter, p.BlockRatio)
	return p, nil
}

// SpeedupFloors are the per-bench speedup ratios a committed baseline must
// clear: the fast path must never lose to the code it replaced, the n=3 DP
// keeps its headline margin, and a template-cache hit must be far cheaper
// than the DP it elides. CheckJSON enforces these in CI over the committed
// BENCH_estimation.json.
var SpeedupFloors = map[string]float64{
	"join_dp_n3":     1.2,
	"join_dp_n6":     1.0,
	"join_dp_n10":    1.0,
	"train_full":     1.0,
	"plan_cache_hit": 5.0,
}

// BlockFloors are the per-bench block-I/O reduction ratios
// (BlocksBefore/BlocksAfter) a committed baseline must clear. Block counts
// are deterministic for a fixed seed, so these floors gate on real I/O
// reduction rather than timer noise — which is why scan_pushdown carries a
// block floor and no speedup floor.
var BlockFloors = map[string]float64{
	"scan_pushdown": 3.0,
}

// CheckJSON loads a persisted estimation report and validates every
// floored bench is present and clears its speedup floor. Smoke reports are
// rejected: smoke iteration counts are a compile gate, not a measurement.
func CheckJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep EstimationReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Smoke {
		return fmt.Errorf("%s is a smoke report; thresholds only apply to full runs", path)
	}
	got := map[string]float64{}
	blocks := map[string]float64{}
	for _, b := range rep.Benches {
		got[b.Name] = b.Speedup
		blocks[b.Name] = b.BlockRatio
	}
	var failures []string
	for name, floor := range SpeedupFloors {
		speedup, ok := got[name]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("%s: missing from report", name))
		case speedup < floor:
			failures = append(failures, fmt.Sprintf("%s: speedup %.2f below floor %.2f", name, speedup, floor))
		}
	}
	for name, floor := range BlockFloors {
		ratio, ok := blocks[name]
		switch {
		case !ok || ratio == 0:
			failures = append(failures, fmt.Sprintf("%s: missing block counts from report", name))
		case ratio < floor:
			failures = append(failures, fmt.Sprintf("%s: block ratio %.2f below floor %.2f", name, ratio, floor))
		}
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		return fmt.Errorf("estimation baseline regressions:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// EstimationSuite runs the full fast-path suite.
func EstimationSuite(cfg EstimationConfig) (*EstimationReport, error) {
	cfg.fill()
	rep := &EstimationReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Smoke:       cfg.Smoke,
		Scale:       0.05,
		Parallelism: cfg.Parallelism,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	if cfg.Smoke {
		rep.Scale = 0.02
	}
	cfg.logf("[estimation] bn_prob")
	bnPair, err := benchBNProb(&cfg)
	if err != nil {
		return nil, err
	}
	rep.Benches = append(rep.Benches, bnPair)
	cfg.logf("[estimation] join DP (training imdb models)")
	dpPairs, err := benchJoinDP(&cfg)
	if err != nil {
		return nil, err
	}
	rep.Benches = append(rep.Benches, dpPairs...)
	cfg.logf("[estimation] train_full")
	trainPair, err := benchTrain(&cfg)
	if err != nil {
		return nil, err
	}
	rep.Benches = append(rep.Benches, trainPair)
	cfg.logf("[estimation] scan_pushdown")
	scanPair, err := benchScanPushdown(&cfg)
	if err != nil {
		return nil, err
	}
	rep.Benches = append(rep.Benches, scanPair)
	return rep, nil
}

// WriteJSON persists the report (indented, trailing newline) for diff-able
// baselines.
func (r *EstimationReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
