package mscn

import (
	"math"
	"math/rand"
	"testing"
)

func testFeaturizer() *Featurizer {
	return &Featurizer{
		Tables:  []string{"a", "b"},
		Joins:   []string{CanonicalJoin("a", "id", "b", "a_id")},
		Columns: []string{"a.x", "b.y"},
		ColMin:  map[string]float64{"a.x": 0, "b.y": 0},
		ColMax:  map[string]float64{"a.x": 100, "b.y": 1000},
	}
}

// syntheticWorkload builds queries whose true cardinality follows a simple
// closed form the network can learn: card = 10000 * selX * selY with
// selX = x/100 for "a.x < x" etc.
func syntheticWorkload(n int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	f := testFeaturizer()
	var out []Query
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100
		y := rng.Float64() * 1000
		q := Query{
			Tables: []string{"a", "b"},
			Joins:  []string{f.Joins[0]},
			Preds: []Pred{
				{Column: "a.x", Op: 2, Value: f.Normalize("a.x", x)},
				{Column: "b.y", Op: 2, Value: f.Normalize("b.y", y)},
			},
			Card: math.Max(10000*(x/100)*(y/1000), 1),
		}
		out = append(out, q)
	}
	return out
}

func TestCanonicalJoinOrderIndependent(t *testing.T) {
	if CanonicalJoin("a", "id", "b", "a_id") != CanonicalJoin("b", "a_id", "a", "id") {
		t.Error("canonical join must ignore side order")
	}
}

func TestNormalize(t *testing.T) {
	f := testFeaturizer()
	if f.Normalize("a.x", 50) != 0.5 {
		t.Error("mid-range must normalize to 0.5")
	}
	if f.Normalize("a.x", -10) != 0 || f.Normalize("a.x", 500) != 1 {
		t.Error("out-of-range must clamp")
	}
	if f.Normalize("unknown", 5) != 0.5 {
		t.Error("unknown column must default to 0.5")
	}
}

func TestFeaturizeErrors(t *testing.T) {
	f := testFeaturizer()
	m := New(f, 1)
	if _, err := m.Predict(Query{Tables: []string{"zz"}}); err == nil {
		t.Error("unknown table must error")
	}
	if _, err := m.Predict(Query{Tables: []string{"a"}, Joins: []string{"zz"}}); err == nil {
		t.Error("unknown join must error")
	}
	if _, err := m.Predict(Query{Tables: []string{"a"}, Preds: []Pred{{Column: "zz"}}}); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := m.Predict(Query{Tables: []string{"a"}, Preds: []Pred{{Column: "a.x", Op: 99}}}); err == nil {
		t.Error("bad operator must error")
	}
}

func TestTrainReducesError(t *testing.T) {
	f := testFeaturizer()
	m := New(f, 2)
	train := syntheticWorkload(400, 3)
	test := syntheticWorkload(50, 4)

	qerr := func() float64 {
		var total float64
		for _, q := range test {
			pred, err := m.Predict(q)
			if err != nil {
				t.Fatal(err)
			}
			total += math.Max(pred/q.Card, q.Card/math.Max(pred, 1))
		}
		return total / float64(len(test))
	}
	before := qerr()
	if err := m.Train(train, TrainConfig{Epochs: 60, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	after := qerr()
	if after >= before {
		t.Errorf("training did not improve: before %g after %g", before, after)
	}
	if after > 3 {
		t.Errorf("mean q-error after training = %g, want < 3", after)
	}
	if m.TrainSeconds <= 0 {
		t.Error("training time not recorded")
	}
}

func TestTrainEmptyWorkloadFails(t *testing.T) {
	m := New(testFeaturizer(), 1)
	if err := m.Train(nil, TrainConfig{}); err == nil {
		t.Error("empty workload must fail")
	}
}

func TestPredictWithEmptySets(t *testing.T) {
	// Single-table query without joins or predicates must still predict.
	m := New(testFeaturizer(), 1)
	if _, err := m.Predict(Query{Tables: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	m := New(testFeaturizer(), 6)
	q := syntheticWorkload(1, 7)[0]
	want, _ := m.Predict(q)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m2.Predict(q)
	if got != want {
		t.Errorf("roundtrip changed prediction: %g vs %g", got, want)
	}
	if _, err := Decode([]byte("junk")); err == nil {
		t.Error("garbage must fail decode")
	}
}

func TestSizeBytes(t *testing.T) {
	m := New(testFeaturizer(), 8)
	if m.SizeBytes() <= 0 {
		t.Error("size must be positive")
	}
}
