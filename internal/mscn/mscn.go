// Package mscn implements the query-driven MSCN baseline (multi-set
// convolutional network): queries are featurized as sets of tables, joins,
// and predicates; each set member passes through a shared MLP encoder,
// encodings are average-pooled per set, and a final MLP regresses the log
// cardinality. The paper evaluates MSCN only as a training-cost comparison
// point (Table 3): query-driven training requires labelled workloads,
// which is exactly the expense ByteCard avoids.
package mscn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"bytecard/internal/nn"
)

// Pred is one featurized predicate.
type Pred struct {
	// Column is the qualified physical column "table.column".
	Column string
	// Op is the comparison operator index (0..5 matching expr.CmpOp).
	Op int
	// Value is the literal normalized to [0,1] by the featurizer.
	Value float64
}

// Query is the featurizer-level query representation.
type Query struct {
	// Tables lists physical table names.
	Tables []string
	// Joins lists canonical join strings "t1.c1=t2.c2" (sides ordered).
	Joins []string
	// Preds lists the filter predicates.
	Preds []Pred
	// Card is the true cardinality label (training only).
	Card float64
}

// CanonicalJoin renders a join condition canonically regardless of side
// order.
func CanonicalJoin(lt, lc, rt, rc string) string {
	a, b := lt+"."+lc, rt+"."+rc
	if b < a {
		a, b = b, a
	}
	return a + "=" + b
}

// Featurizer fixes the one-hot vocabularies and value normalization.
type Featurizer struct {
	Tables  []string
	Joins   []string
	Columns []string
	// ColMin/ColMax normalize literals per column.
	ColMin, ColMax map[string]float64
}

// NumOps is the operator vocabulary size.
const NumOps = 6

func indexOf(list []string, v string) int {
	for i, s := range list {
		if s == v {
			return i
		}
	}
	return -1
}

// TableVecDim returns the table one-hot width.
func (f *Featurizer) TableVecDim() int { return len(f.Tables) }

// JoinVecDim returns the join one-hot width.
func (f *Featurizer) JoinVecDim() int { return len(f.Joins) }

// PredVecDim returns the predicate feature width.
func (f *Featurizer) PredVecDim() int { return len(f.Columns) + NumOps + 1 }

// Normalize maps a literal into [0,1] for its column.
func (f *Featurizer) Normalize(col string, v float64) float64 {
	lo, hi := f.ColMin[col], f.ColMax[col]
	if hi <= lo {
		return 0.5
	}
	x := (v - lo) / (hi - lo)
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return x
}

// featurize renders the three feature sets of a query.
func (f *Featurizer) featurize(q Query) (tables, joins, preds [][]float64, err error) {
	for _, t := range q.Tables {
		i := indexOf(f.Tables, t)
		if i < 0 {
			return nil, nil, nil, fmt.Errorf("mscn: unknown table %q", t)
		}
		v := make([]float64, f.TableVecDim())
		v[i] = 1
		tables = append(tables, v)
	}
	for _, j := range q.Joins {
		i := indexOf(f.Joins, j)
		if i < 0 {
			return nil, nil, nil, fmt.Errorf("mscn: unknown join %q", j)
		}
		v := make([]float64, f.JoinVecDim())
		v[i] = 1
		joins = append(joins, v)
	}
	for _, p := range q.Preds {
		i := indexOf(f.Columns, p.Column)
		if i < 0 {
			return nil, nil, nil, fmt.Errorf("mscn: unknown column %q", p.Column)
		}
		if p.Op < 0 || p.Op >= NumOps {
			return nil, nil, nil, fmt.Errorf("mscn: bad operator %d", p.Op)
		}
		v := make([]float64, f.PredVecDim())
		v[i] = 1
		v[len(f.Columns)+p.Op] = 1
		v[len(f.Columns)+NumOps] = p.Value
		preds = append(preds, v)
	}
	return tables, joins, preds, nil
}

// HiddenDim is the shared encoder/pooled width.
const HiddenDim = 32

// Model is a trained MSCN.
type Model struct {
	F *Featurizer
	// TableEnc/JoinEnc/PredEnc are the shared per-item set encoders.
	TableEnc, JoinEnc, PredEnc *nn.Network
	// Head regresses pooled encodings to log2(card).
	Head *nn.Network
	// TrainSeconds records training wall time (excluding label
	// computation, matching the paper's accounting).
	TrainSeconds float64
}

// New initializes an untrained model for the featurizer.
func New(f *Featurizer, seed int64) *Model {
	return &Model{
		F:        f,
		TableEnc: nn.NewNetwork(seed+1, f.TableVecDim(), HiddenDim, HiddenDim),
		JoinEnc:  nn.NewNetwork(seed+2, maxInt(f.JoinVecDim(), 1), HiddenDim, HiddenDim),
		PredEnc:  nn.NewNetwork(seed+3, f.PredVecDim(), HiddenDim, HiddenDim),
		Head:     nn.NewNetwork(seed+4, 3*HiddenDim, 64, 32, 1),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// forward encodes a query, returning the prediction and the tapes needed
// for backprop.
type forwardState struct {
	tableTapes, joinTapes, predTapes []*nn.Tape
	headTape                         *nn.Tape
	pooled                           []float64
}

func (m *Model) forward(q Query) (float64, *forwardState, error) {
	tv, jv, pv, err := m.F.featurize(q)
	if err != nil {
		return 0, nil, err
	}
	st := &forwardState{}
	pool := func(net *nn.Network, items [][]float64, tapes *[]*nn.Tape) []float64 {
		out := make([]float64, HiddenDim)
		if len(items) == 0 {
			return out
		}
		for _, x := range items {
			tape := net.ForwardTape(x)
			*tapes = append(*tapes, tape)
			for i, v := range tape.Output() {
				out[i] += v
			}
		}
		for i := range out {
			out[i] /= float64(len(items))
		}
		return out
	}
	tp := pool(m.TableEnc, tv, &st.tableTapes)
	jp := pool(m.JoinEnc, jv, &st.joinTapes)
	pp := pool(m.PredEnc, pv, &st.predTapes)
	st.pooled = append(append(append([]float64{}, tp...), jp...), pp...)
	st.headTape = m.Head.ForwardTape(st.pooled)
	return st.headTape.Output()[0], st, nil
}

// Predict returns the estimated cardinality for a query.
func (m *Model) Predict(q Query) (float64, error) {
	y, _, err := m.forward(q)
	if err != nil {
		return 0, err
	}
	return math.Exp2(y), nil
}

// TrainConfig controls training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

// Train fits the model on labelled queries (Card holds true cardinality).
func (m *Model) Train(queries []Query, cfg TrainConfig) error {
	if len(queries) == 0 {
		return errors.New("mscn: empty training workload")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 40
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	start := time.Now()
	optT := nn.NewAdam(m.TableEnc, cfg.LR)
	optJ := nn.NewAdam(m.JoinEnc, cfg.LR)
	optP := nn.NewAdam(m.PredEnc, cfg.LR)
	optH := nn.NewAdam(m.Head, cfg.LR)
	gT, gJ, gP, gH := nn.NewGrads(m.TableEnc), nn.NewGrads(m.JoinEnc), nn.NewGrads(m.PredEnc), nn.NewGrads(m.Head)

	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	idx := make([]int, len(queries))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < len(idx); s += cfg.BatchSize {
			e := s + cfg.BatchSize
			if e > len(idx) {
				e = len(idx)
			}
			gT.Zero()
			gJ.Zero()
			gP.Zero()
			gH.Zero()
			bs := float64(e - s)
			for _, qi := range idx[s:e] {
				q := queries[qi]
				pred, st, err := m.forward(q)
				if err != nil {
					return err
				}
				y := math.Log2(math.Max(q.Card, 1))
				dOut := 2 * (pred - y) / bs
				dPooled := m.Head.BackwardTape(st.headTape, []float64{dOut}, gH)
				backSet := func(net *nn.Network, tapes []*nn.Tape, g *nn.Grads, seg []float64) {
					if len(tapes) == 0 {
						return
					}
					d := make([]float64, HiddenDim)
					for i := range d {
						d[i] = seg[i] / float64(len(tapes))
					}
					for _, tape := range tapes {
						net.BackwardTape(tape, d, g)
					}
				}
				backSet(m.TableEnc, st.tableTapes, gT, dPooled[:HiddenDim])
				backSet(m.JoinEnc, st.joinTapes, gJ, dPooled[HiddenDim:2*HiddenDim])
				backSet(m.PredEnc, st.predTapes, gP, dPooled[2*HiddenDim:])
			}
			optT.StepGrads(m.TableEnc, gT)
			optJ.StepGrads(m.JoinEnc, gJ)
			optP.StepGrads(m.PredEnc, gP)
			optH.StepGrads(m.Head, gH)
		}
	}
	m.TrainSeconds = time.Since(start).Seconds()
	return nil
}

// SizeBytes reports the parameter footprint.
func (m *Model) SizeBytes() int64 {
	return m.TableEnc.SizeBytes() + m.JoinEnc.SizeBytes() + m.PredEnc.SizeBytes() + m.Head.SizeBytes()
}

// Encode serializes the model with gob.
func (m *Model) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserializes a model.
func Decode(data []byte) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, err
	}
	for _, net := range []*nn.Network{m.TableEnc, m.JoinEnc, m.PredEnc, m.Head} {
		if net == nil {
			return nil, errors.New("mscn: missing sub-network")
		}
		if err := net.Validate(); err != nil {
			return nil, err
		}
	}
	return &m, nil
}
