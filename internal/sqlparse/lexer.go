package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes a SQL string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

var symbols = []string{"<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*"}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			if !l.lexSymbol() {
				return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, l.pos)
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(c rune) bool { return unicode.IsLetter(c) || c == '_' }
func isIdentPart(c rune) bool  { return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' }

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string at offset %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexSymbol() bool {
	for _, s := range symbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.toks = append(l.toks, token{kind: tokSymbol, text: s, pos: l.pos})
			l.pos += len(s)
			return true
		}
	}
	return false
}
