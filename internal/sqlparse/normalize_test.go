package sqlparse

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

// TestNormalizeSameTemplateSameKey pins the template identity: queries
// differing only in comparison constants share a key; queries differing
// in structure — columns, operators, join conditions, grouping — do not.
func TestNormalizeSameTemplateSameKey(t *testing.T) {
	siblings := [][2]string{
		{
			"SELECT COUNT(*) FROM t WHERE t.a > 10",
			"SELECT COUNT(*) FROM t WHERE t.a > 99",
		},
		{
			"SELECT COUNT(*) FROM t WHERE t.a > 10 AND t.b = 'x'",
			"SELECT COUNT(*) FROM t WHERE t.a > -3 AND t.b = 'other'",
		},
		{
			"SELECT COUNT(*) FROM a, b WHERE a.x = b.y AND a.v < 2.5",
			"SELECT COUNT(*) FROM a, b WHERE a.x = b.y AND a.v < 7",
		},
		{
			"SELECT COUNT(*) FROM t WHERE (t.a = 1 OR t.b = 2) AND t.c = 3",
			"SELECT COUNT(*) FROM t WHERE (t.a = 9 OR t.b = 8) AND t.c = 7",
		},
	}
	for _, pair := range siblings {
		k0 := Normalize(mustParse(t, pair[0]))
		k1 := Normalize(mustParse(t, pair[1]))
		if k0 != k1 {
			t.Errorf("templates differ:\n  %q -> %q\n  %q -> %q", pair[0], k0, pair[1], k1)
		}
	}
	distinct := []string{
		"SELECT COUNT(*) FROM t WHERE t.a > 10",
		"SELECT COUNT(*) FROM t WHERE t.a < 10",
		"SELECT COUNT(*) FROM t WHERE t.b > 10",
		"SELECT COUNT(*) FROM t WHERE t.a > 10 AND t.b = 1",
		"SELECT COUNT(*) FROM t WHERE t.a = 'x'",
		"SELECT COUNT(*) FROM t",
		"SELECT COUNT(*) FROM u WHERE u.a > 10",
		"SELECT COUNT(*) FROM a, b WHERE a.x = b.y",
		"SELECT COUNT(*) FROM a, b WHERE a.x = b.z",
		"SELECT t.a, COUNT(*) FROM t GROUP BY t.a",
		"SELECT COUNT(DISTINCT t.a) FROM t",
	}
	keys := map[string]string{}
	for _, sql := range distinct {
		k := Normalize(mustParse(t, sql))
		if prev, ok := keys[k]; ok {
			t.Errorf("distinct structures collide: %q and %q -> %q", prev, sql, k)
		}
		keys[k] = sql
	}
}

// TestNormalizeStringVsNumberDistinct guards the canonical-literal choice:
// a string comparison and a numeric comparison against the same column
// must normalize differently (they select different featurization paths).
func TestNormalizeStringVsNumberDistinct(t *testing.T) {
	num := Normalize(mustParse(t, "SELECT COUNT(*) FROM t WHERE t.a = 5"))
	str := Normalize(mustParse(t, "SELECT COUNT(*) FROM t WHERE t.a = 'v'"))
	if num == str {
		t.Errorf("numeric and string templates collide: %q", num)
	}
	// Int and float constants share a template: both featurize as numeric
	// range predicates, and the canonical numeric literal must be a
	// fixpoint under re-parsing.
	f := Normalize(mustParse(t, "SELECT COUNT(*) FROM t WHERE t.a = 2.5"))
	if num != f {
		t.Errorf("int and float constants split the template: %q vs %q", num, f)
	}
}

// TestNormalizeDoesNotMutate checks Normalize leaves the input statement
// untouched — the planner normalizes live queries whose constants the
// executor still needs.
func TestNormalizeDoesNotMutate(t *testing.T) {
	stmt := mustParse(t, "SELECT COUNT(*) FROM t WHERE t.a > 10 AND t.b = 'x'")
	before := stmt.String()
	Normalize(stmt)
	if after := stmt.String(); after != before {
		t.Errorf("Normalize mutated its input: %q -> %q", before, after)
	}
}

// FuzzNormalize checks the normalizer's contract over arbitrary parsed
// statements: the key is itself parseable SQL, normalization is a
// fixpoint (Normalize(Parse(key)) == key — keys are canonical), and
// normalizing never panics or mutates.
func FuzzNormalize(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(*) FROM title",
		"SELECT COUNT(*) FROM title t, cast_info AS ci WHERE t.id = ci.movie_id",
		"SELECT COUNT(*) FROM t WHERE t.a >= 10 AND t.b < 2.5 AND t.c = 'xyz'",
		"SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2 AND c = 3",
		"SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3",
		"SELECT u.state, COUNT(*), AVG(p.score) FROM posts p, users u WHERE p.owner = u.id GROUP BY u.state",
		"SELECT COUNT(DISTINCT a, b) FROM t",
		"SELECT COUNT(*) FROM t WHERE name = 'O''Brien'",
		"SELECT COUNT(*) FROM t WHERE t.a > -5",
		strings.Repeat("SELECT COUNT(*) FROM t WHERE a = 1", 1),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return
		}
		before := stmt.String()
		key := Normalize(stmt)
		if stmt.String() != before {
			t.Fatalf("Normalize mutated %q", sql)
		}
		restmt, err := Parse(key)
		if err != nil {
			t.Fatalf("key %q (from %q) does not parse: %v", key, sql, err)
		}
		if again := Normalize(restmt); again != key {
			t.Fatalf("not a fixpoint: %q -> %q -> %q", sql, key, again)
		}
	})
}
