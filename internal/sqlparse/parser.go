package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"bytecard/internal/expr"
	"bytecard/internal/types"
)

// Parse parses one SELECT statement.
func Parse(sql string) (*SelectStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %s", p.peek())
	}
	return stmt, nil
}

// MustParse parses known-good SQL; it panics on error (used by generators
// and tests).
func MustParse(sql string) *SelectStmt {
	stmt, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return stmt
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token   { return p.toks[p.i] }
func (p *parser) next() token   { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.i }
func (p *parser) restore(s int) { p.i = s }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// keyword consumes an identifier token matching kw case-insensitively.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) symbol(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.symbol(s) {
		return p.errorf("expected %q, found %s", s, p.peek())
	}
	return nil
}

var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"and": true, "or": true, "as": true, "count": true, "sum": true,
	"avg": true, "min": true, "max": true, "distinct": true, "join": true, "on": true,
	"limit": true,
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, found %s", t)
	}
	if reservedWords[strings.ToLower(t.text)] {
		return "", p.errorf("unexpected keyword %s", t)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if p.symbol(",") || p.keyword("JOIN") {
			continue
		}
		break
	}
	if p.keyword("WHERE") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = cond
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count, found %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, p.errorf("LIMIT must be a positive integer, found %s", t)
		}
		p.next()
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.symbol("*") {
		return SelectItem{Kind: ItemStar}, nil
	}
	for _, agg := range []string{"COUNT", "SUM", "AVG", "MIN", "MAX"} {
		if p.keyword(agg) {
			return p.parseAgg(agg)
		}
	}
	col, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Kind: ItemColumn, Cols: []ColRef{col}}, nil
}

func (p *parser) parseAgg(agg string) (SelectItem, error) {
	if err := p.expectSymbol("("); err != nil {
		return SelectItem{}, err
	}
	if agg == "COUNT" {
		if p.symbol("*") {
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Kind: ItemCountStar}, nil
		}
		if p.keyword("DISTINCT") {
			item := SelectItem{Kind: ItemCountDistinct}
			for {
				col, err := p.parseColRef()
				if err != nil {
					return SelectItem{}, err
				}
				item.Cols = append(item.Cols, col)
				if !p.symbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			return item, nil
		}
	}
	col, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Kind: ItemAgg, Agg: agg, Cols: []ColRef{col}}, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.keyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
		return ref, nil
	}
	// Bare alias: an identifier not followed by '.' and not a keyword.
	if t := p.peek(); t.kind == tokIdent && !reservedWords[strings.ToLower(t.text)] {
		ref.Alias = t.text
		p.next()
	}
	return ref, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.symbol(".") {
		second, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: first, Name: second}, nil
	}
	return ColRef{Name: first}, nil
}

func (p *parser) parseOr() (*Cond, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []*Cond{left}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return &Cond{Kind: CondOr, Children: children}, nil
}

func (p *parser) parseAnd() (*Cond, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	children := []*Cond{left}
	for p.keyword("AND") {
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return &Cond{Kind: CondAnd, Children: children}, nil
}

func (p *parser) parsePrimary() (*Cond, error) {
	if p.symbol("(") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return cond, nil
	}
	return p.parseComparison()
}

var opBySymbol = map[string]expr.CmpOp{
	"=": expr.OpEq, "<>": expr.OpNe, "!=": expr.OpNe,
	"<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parseComparison() (*Cond, error) {
	left, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	op, ok := opBySymbol[t.text]
	if t.kind != tokSymbol || !ok {
		return nil, p.errorf("expected comparison operator, found %s", t)
	}
	p.next()
	// Right side: literal or column.
	switch rt := p.peek(); rt.kind {
	case tokNumber:
		p.next()
		val, err := parseNumber(rt.text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		return &Cond{Kind: CondCmp, Op: op, Left: left, RightVal: val}, nil
	case tokString:
		p.next()
		return &Cond{Kind: CondCmp, Op: op, Left: left, RightVal: types.Str(rt.text)}, nil
	case tokIdent:
		save := p.save()
		right, err := p.parseColRef()
		if err != nil {
			p.restore(save)
			return nil, p.errorf("expected literal or column, found %s", rt)
		}
		return &Cond{Kind: CondCmp, Op: op, Left: left, RightCol: &right}, nil
	default:
		return nil, p.errorf("expected literal or column, found %s", rt)
	}
}

func parseNumber(text string) (types.Datum, error) {
	if !strings.Contains(text, ".") {
		v, err := strconv.ParseInt(text, 10, 64)
		if err == nil {
			return types.Int(v), nil
		}
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return types.Datum{}, fmt.Errorf("bad numeric literal %q", text)
	}
	return types.Float(f), nil
}
