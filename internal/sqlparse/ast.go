// Package sqlparse implements the SQL front end for the query class the
// evaluation workloads use: select–project–join blocks with conjunctive/
// disjunctive filters, GROUP BY, and the COUNT / COUNT DISTINCT / SUM /
// AVG / MIN / MAX aggregates.
package sqlparse

import (
	"strconv"
	"strings"

	"bytecard/internal/expr"
	"bytecard/internal/types"
)

// ColRef names a possibly-qualified column.
type ColRef struct {
	Qualifier string // table name or alias; may be empty
	Name      string
}

// String renders the reference.
func (c ColRef) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the query binds the table to.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// String renders the reference.
func (t TableRef) String() string {
	if t.Alias == "" {
		return t.Name
	}
	return t.Name + " " + t.Alias
}

// ItemKind classifies select-list items.
type ItemKind int

// Select-list item kinds.
const (
	ItemStar ItemKind = iota
	ItemColumn
	ItemCountStar
	ItemCountDistinct
	ItemAgg // SUM/AVG/MIN/MAX/COUNT over a column
)

// SelectItem is one entry of the select list.
type SelectItem struct {
	Kind ItemKind
	// Agg holds the aggregate name (upper case) for ItemAgg.
	Agg string
	// Cols holds the referenced columns: one for ItemColumn/ItemAgg, one
	// or more for ItemCountDistinct.
	Cols []ColRef
}

// String renders the item.
func (s SelectItem) String() string {
	switch s.Kind {
	case ItemStar:
		return "*"
	case ItemColumn:
		return s.Cols[0].String()
	case ItemCountStar:
		return "COUNT(*)"
	case ItemCountDistinct:
		parts := make([]string, len(s.Cols))
		for i, c := range s.Cols {
			parts[i] = c.String()
		}
		return "COUNT(DISTINCT " + strings.Join(parts, ", ") + ")"
	default:
		return s.Agg + "(" + s.Cols[0].String() + ")"
	}
}

// CondKind classifies condition nodes.
type CondKind int

// Condition node kinds.
const (
	CondCmp CondKind = iota
	CondAnd
	CondOr
)

// Cond is a WHERE-clause tree. Comparison leaves either compare a column
// with a literal (RightCol nil) or two columns (a join condition).
type Cond struct {
	Kind     CondKind
	Op       expr.CmpOp
	Left     ColRef
	RightCol *ColRef
	RightVal types.Datum
	Children []*Cond
}

// IsJoin reports whether the leaf compares two columns.
func (c *Cond) IsJoin() bool { return c.Kind == CondCmp && c.RightCol != nil }

// String renders the condition.
func (c *Cond) String() string {
	switch c.Kind {
	case CondCmp:
		right := c.RightVal.String()
		if c.RightCol != nil {
			right = c.RightCol.String()
		}
		return c.Left.String() + " " + c.Op.String() + " " + right
	case CondAnd, CondOr:
		op := " AND "
		if c.Kind == CondOr {
			op = " OR "
		}
		parts := make([]string, len(c.Children))
		for i, ch := range c.Children {
			if ch.Kind == CondCmp {
				parts[i] = ch.String()
			} else {
				parts[i] = "(" + ch.String() + ")"
			}
		}
		return strings.Join(parts, op)
	default:
		panic("sqlparse: unknown cond kind")
	}
}

// SelectStmt is a parsed query block.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   *Cond
	GroupBy []ColRef
	// Limit caps the number of result rows; 0 means no LIMIT clause
	// (LIMIT 0 is rejected at parse time).
	Limit int
}

// String renders the statement as SQL; Parse(stmt.String()) reproduces an
// equivalent AST.
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		items[i] = it.String()
	}
	sb.WriteString(strings.Join(items, ", "))
	sb.WriteString(" FROM ")
	tabs := make([]string, len(s.From))
	for i, t := range s.From {
		tabs[i] = t.String()
	}
	sb.WriteString(strings.Join(tabs, ", "))
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		cols := make([]string, len(s.GroupBy))
		for i, c := range s.GroupBy {
			cols[i] = c.String()
		}
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(cols, ", "))
	}
	if s.Limit > 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.Itoa(s.Limit))
	}
	return sb.String()
}
