package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary byte strings through the SQL parser. The parser
// sits on an exposed edge: every workload file, probe generator, and CLI
// query flows through Parse, so it must reject malformed input with an
// error — never a panic, hang, or runaway allocation. Seeds cover the
// dialect's full surface (aliases, JOIN, OR/parentheses, GROUP BY,
// COUNT(DISTINCT), quoted strings) plus the malformed shapes the unit tests
// already pin.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// The workload generator's query templates.
		"SELECT COUNT(*) FROM title",
		"SELECT COUNT(*) FROM title t, cast_info AS ci WHERE t.id = ci.movie_id",
		"SELECT COUNT(*) FROM a JOIN b WHERE a.x = b.y",
		"SELECT COUNT(*) FROM t WHERE t.a >= 10 AND t.b < 2.5 AND t.c = 'xyz'",
		"SELECT COUNT(*) FROM t WHERE t.a > -5",
		"SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2 AND c = 3",
		"SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3",
		"SELECT u.state, COUNT(*), AVG(p.score), COUNT(DISTINCT p.owner, p.kind) FROM posts p, users u WHERE p.owner = u.id GROUP BY u.state, p.kind",
		"SELECT COUNT(DISTINCT a, b) FROM t",
		"SELECT COUNT(*) FROM t WHERE name = 'O''Brien'",
		// Malformed shapes that must error cleanly.
		"SELECT",
		"SELECT COUNT(* FROM t",
		"SELECT COUNT(*) FROM t WHERE a = 'unterminated",
		"SELECT COUNT(*) FROM t WHERE a ~ 1",
		"SELECT COUNT(*) FROM t trailing garbage = 1",
		"((((((((((",
		"SELECT COUNT(*) FROM t WHERE " + strings.Repeat("(", 256) + "a = 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement with nil error", sql)
		}
		if err != nil && stmt != nil {
			t.Fatalf("Parse(%q) returned both statement and error %v", sql, err)
		}
		if err == nil {
			// String() documents a round-trip guarantee: anything Parse
			// accepts must render back to SQL that Parse accepts again.
			rendered := stmt.String()
			if _, err := Parse(rendered); err != nil {
				t.Fatalf("round-trip failed: Parse(%q) accepted, but its rendering %q does not re-parse: %v", sql, rendered, err)
			}
		}
	})
}
