package sqlparse

import "bytecard/internal/types"

// Normalize renders stmt as its query template: the same SQL text with
// every predicate constant replaced by a canonical literal of its kind
// (numerics become 0, strings become ”). Two statements that differ only
// in filter constants normalize to the same string; statements that
// differ structurally — tables, join graph, predicate columns, operators,
// AND/OR shape, select list, grouping — normalize differently. Join
// conditions (column = column) carry no constants and pass through
// untouched.
//
// The result is itself valid SQL: Parse(Normalize(stmt)) succeeds and
// re-normalizes to the same string (a fixpoint, fuzz-asserted). That is
// why both numeric kinds canonicalize to the integer 0 — a float
// rendered "0" re-parses as an integer, so keeping one canonical numeric
// literal is what makes the round trip stable.
//
// Normalize is the key function of the engine's template-keyed plan
// cache: production traffic is template-heavy (the TiCard deployment
// argument), so planning work keyed by template amortizes across every
// constant-substituted instance. stmt is not modified.
func Normalize(stmt *SelectStmt) string {
	if stmt == nil {
		return ""
	}
	n := &SelectStmt{
		Items:   stmt.Items,
		From:    stmt.From,
		Where:   normalizeCond(stmt.Where),
		GroupBy: stmt.GroupBy,
		// LIMIT is structural (it changes how much the scan may read), so
		// it stays verbatim rather than canonicalizing to a placeholder.
		Limit: stmt.Limit,
	}
	return n.String()
}

// normalizeCond deep-copies a condition tree with literals canonicalized.
// Nodes without literals anywhere beneath them are shared, not copied.
func normalizeCond(c *Cond) *Cond {
	if c == nil {
		return nil
	}
	switch c.Kind {
	case CondCmp:
		if c.RightCol != nil {
			return c // join condition: no constant to strip
		}
		n := *c
		switch c.RightVal.K {
		case types.KindString:
			n.RightVal = types.Str("")
		default:
			n.RightVal = types.Int(0)
		}
		return &n
	default:
		n := *c
		n.Children = make([]*Cond, len(c.Children))
		for i, ch := range c.Children {
			n.Children[i] = normalizeCond(ch)
		}
		return &n
	}
}
