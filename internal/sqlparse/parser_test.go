package sqlparse

import (
	"strings"
	"testing"

	"bytecard/internal/expr"
	"bytecard/internal/types"
)

func TestParseCountStar(t *testing.T) {
	s := MustParse("SELECT COUNT(*) FROM title")
	if len(s.Items) != 1 || s.Items[0].Kind != ItemCountStar {
		t.Fatalf("items = %v", s.Items)
	}
	if len(s.From) != 1 || s.From[0].Name != "title" {
		t.Fatalf("from = %v", s.From)
	}
	if s.Where != nil || s.GroupBy != nil {
		t.Error("unexpected where/group by")
	}
}

func TestParseAliases(t *testing.T) {
	s := MustParse("SELECT COUNT(*) FROM title t, cast_info AS ci WHERE t.id = ci.movie_id")
	if s.From[0].Binding() != "t" || s.From[1].Binding() != "ci" {
		t.Errorf("bindings = %v %v", s.From[0], s.From[1])
	}
	if s.From[1].Name != "cast_info" {
		t.Errorf("second table = %v", s.From[1])
	}
	w := s.Where
	if w.Kind != CondCmp || !w.IsJoin() {
		t.Fatalf("where = %v", w)
	}
	if w.Left.Qualifier != "t" || w.RightCol.Qualifier != "ci" || w.RightCol.Name != "movie_id" {
		t.Errorf("join refs = %v %v", w.Left, w.RightCol)
	}
}

func TestParseJoinKeyword(t *testing.T) {
	s := MustParse("SELECT COUNT(*) FROM a JOIN b WHERE a.x = b.y")
	if len(s.From) != 2 {
		t.Fatalf("from = %v", s.From)
	}
}

func TestParsePredicates(t *testing.T) {
	s := MustParse("SELECT COUNT(*) FROM t WHERE t.a >= 10 AND t.b < 2.5 AND t.c = 'xyz'")
	w := s.Where
	if w.Kind != CondAnd || len(w.Children) != 3 {
		t.Fatalf("where = %v", w)
	}
	if w.Children[0].Op != expr.OpGe || w.Children[0].RightVal.I != 10 {
		t.Errorf("pred 0 = %v", w.Children[0])
	}
	if w.Children[1].RightVal.K != types.KindFloat64 || w.Children[1].RightVal.F != 2.5 {
		t.Errorf("pred 1 = %v", w.Children[1])
	}
	if w.Children[2].RightVal.S != "xyz" {
		t.Errorf("pred 2 = %v", w.Children[2])
	}
}

func TestParseNegativeNumber(t *testing.T) {
	s := MustParse("SELECT COUNT(*) FROM t WHERE t.a > -5")
	if s.Where.RightVal.I != -5 {
		t.Errorf("literal = %v", s.Where.RightVal)
	}
}

func TestParseOrPrecedence(t *testing.T) {
	s := MustParse("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2 AND c = 3")
	// AND binds tighter: OR(a=1, AND(b=2, c=3)).
	w := s.Where
	if w.Kind != CondOr || len(w.Children) != 2 {
		t.Fatalf("where = %v", w)
	}
	if w.Children[1].Kind != CondAnd {
		t.Errorf("second child = %v", w.Children[1])
	}
}

func TestParseParens(t *testing.T) {
	s := MustParse("SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3")
	w := s.Where
	if w.Kind != CondAnd || w.Children[0].Kind != CondOr {
		t.Fatalf("where = %v", w)
	}
}

func TestParseGroupByAndAggregates(t *testing.T) {
	s := MustParse("SELECT u.state, COUNT(*), AVG(p.score), COUNT(DISTINCT p.owner, p.kind) FROM posts p, users u WHERE p.owner = u.id GROUP BY u.state, p.kind")
	if len(s.Items) != 4 {
		t.Fatalf("items = %v", s.Items)
	}
	if s.Items[0].Kind != ItemColumn || s.Items[1].Kind != ItemCountStar {
		t.Error("item kinds broken")
	}
	if s.Items[2].Kind != ItemAgg || s.Items[2].Agg != "AVG" {
		t.Errorf("avg item = %v", s.Items[2])
	}
	cd := s.Items[3]
	if cd.Kind != ItemCountDistinct || len(cd.Cols) != 2 {
		t.Errorf("count distinct item = %v", cd)
	}
	if len(s.GroupBy) != 2 || s.GroupBy[0].Qualifier != "u" || s.GroupBy[1].Name != "kind" {
		t.Errorf("group by = %v", s.GroupBy)
	}
}

func TestParseStringEscapes(t *testing.T) {
	s := MustParse("SELECT COUNT(*) FROM t WHERE name = 'O''Brien'")
	if s.Where.RightVal.S != "O'Brien" {
		t.Errorf("string = %q", s.Where.RightVal.S)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT COUNT(* FROM t",
		"SELECT COUNT(*) FROM",
		"SELECT COUNT(*) FROM t WHERE",
		"SELECT COUNT(*) FROM t WHERE a",
		"SELECT COUNT(*) FROM t WHERE a = ",
		"SELECT COUNT(*) FROM t WHERE a = 'unterminated",
		"SELECT COUNT(*) FROM t WHERE a ~ 1",
		"SELECT COUNT(*) FROM t trailing garbage = 1",
		"SELECT COUNT(*) FROM t GROUP",
		"SELECT FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad SQL must panic")
		}
	}()
	MustParse("not sql")
}

func TestStringRoundtrip(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) FROM title",
		"SELECT COUNT(*) FROM title t, cast_info ci WHERE t.id = ci.movie_id AND t.year > 2000",
		"SELECT a, COUNT(*) FROM t WHERE a = 1 OR (b < 2 AND c <> 'x') GROUP BY a",
		"SELECT COUNT(DISTINCT a, b), SUM(c) FROM t GROUP BY d",
		"SELECT MIN(x) FROM t WHERE x >= -3.5",
	}
	for _, q := range queries {
		first := MustParse(q)
		second := MustParse(first.String())
		if first.String() != second.String() {
			t.Errorf("roundtrip mismatch:\n  in:  %s\n  out: %s\n  re:  %s", q, first, second)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	s := MustParse("select count(*) from t where a = 1 group by b")
	if s.Items[0].Kind != ItemCountStar || len(s.GroupBy) != 1 {
		t.Error("lower-case keywords must parse")
	}
}

func TestReservedWordAsIdentifierRejected(t *testing.T) {
	if _, err := Parse("SELECT COUNT(*) FROM select"); err == nil {
		t.Error("reserved word as table name must fail")
	}
}

func TestCondString(t *testing.T) {
	s := MustParse("SELECT COUNT(*) FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
	str := s.Where.String()
	if !strings.Contains(str, "AND") || !strings.Contains(str, "(") {
		t.Errorf("Cond.String = %q", str)
	}
}
