// Package loader implements the Model Loader: a background task (a peer of
// compaction under the warehouse's Daemon Manager) that ships artifacts
// from the model store into the Inference Engine on a timestamp basis —
// only strictly newer versions are installed — and maintains the in-memory
// per-table sample frames RBX featurization reads.
package loader

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bytecard/internal/core"
	"bytecard/internal/modelstore"
	"bytecard/internal/sample"
	"bytecard/internal/storage"
)

// DefaultInterval is the paper's default refresh cadence.
const DefaultInterval = time.Hour

// DefaultSampleRows caps the per-table RBX sample frame (the paper loads
// under 10 million rows per table; bench scale needs far less).
const DefaultSampleRows = 20000

// DefaultBackoffBase is the first retry delay after a failed refresh.
const DefaultBackoffBase = time.Second

// Loader periodically refreshes the Inference Engine from the store.
type Loader struct {
	Store  *modelstore.Store
	Engine *core.InferenceEngine
	// Interval between successful refreshes (default one hour).
	Interval time.Duration
	// BackoffBase is the retry delay after the first failed refresh; it
	// doubles per consecutive failure (default one second).
	BackoffBase time.Duration
	// BackoffMax caps the retry delay (default: the refresh interval).
	BackoffMax time.Duration

	// mu guards everything below: RefreshOnce may be called directly
	// (System.RefreshModels) while the background Run loop is refreshing.
	mu          sync.Mutex
	installed   map[string]time.Time
	lastErr     error
	lastSuccess time.Time
	failures    int
}

// Health reports the loader's operational state.
type Health struct {
	// LastSuccess is when a refresh last completed without error (zero if
	// never).
	LastSuccess time.Time
	// ConsecutiveFailures counts refreshes that errored since the last
	// success.
	ConsecutiveFailures int
	// LastError is the most recent refresh failure (nil after a clean
	// refresh).
	LastError error
}

// New creates a loader.
func New(store *modelstore.Store, engine *core.InferenceEngine) *Loader {
	return &Loader{
		Store:     store,
		Engine:    engine,
		Interval:  DefaultInterval,
		installed: map[string]time.Time{},
	}
}

// RefreshOnce installs every artifact whose timestamp is newer than the
// installed version, returning how many models were (re)loaded. Invalid
// artifacts are skipped (and reported) rather than aborting the sweep —
// one bad model must not block the rest. Safe to call concurrently with
// the background Run loop.
func (l *Loader) RefreshOnce() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	manifests, err := l.Store.List()
	if err != nil {
		l.recordLocked(err)
		return 0, err
	}
	loaded := 0
	var firstErr error
	for _, m := range manifests {
		prev, ok := l.installed[m.Name]
		if ok && !m.Timestamp.After(prev) {
			continue
		}
		art, err := l.Store.Get(m.Name)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := l.Engine.LoadModel(art); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("loader: %s: %w", m.Name, err)
			}
			continue
		}
		l.installed[m.Name] = m.Timestamp
		loaded++
	}
	l.recordLocked(firstErr)
	return loaded, firstErr
}

func (l *Loader) recordLocked(err error) {
	l.lastErr = err
	if err != nil {
		l.failures++
		return
	}
	l.failures = 0
	l.lastSuccess = time.Now()
}

// Health returns the loader's current operational state.
func (l *Loader) Health() Health {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Health{
		LastSuccess:         l.lastSuccess,
		ConsecutiveFailures: l.failures,
		LastError:           l.lastErr,
	}
}

// HealthSnapshot is the serializable form of Health (errors rendered as
// strings) used by System.Metrics.
type HealthSnapshot struct {
	LastSuccess         time.Time `json:"last_success"`
	ConsecutiveFailures int       `json:"consecutive_failures"`
	LastError           string    `json:"last_error,omitempty"`
	Installed           int       `json:"installed"`
	// Store surfaces the model store's crash-safety state: quarantined
	// generations, detected corruption, and any artifact currently served
	// from a last-known-good fallback.
	Store modelstore.HealthSnapshot `json:"store"`
}

// Snapshot returns the loader's serializable operational state, including
// how many artifact names are currently installed and the backing store's
// corruption/fallback health.
func (l *Loader) Snapshot() HealthSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := HealthSnapshot{
		LastSuccess:         l.lastSuccess,
		ConsecutiveFailures: l.failures,
		Installed:           len(l.installed),
		Store:               l.Store.Health(),
	}
	if l.lastErr != nil {
		s.LastError = l.lastErr.Error()
	}
	return s
}

// nextDelay picks the wait before the next refresh: the configured
// interval after a success, exponential backoff (base doubling per
// consecutive failure, capped) after a failure so a broken store is
// retried promptly once it heals without being hammered.
func (l *Loader) nextDelay(interval time.Duration, failed bool) time.Duration {
	if !failed {
		return interval
	}
	base := l.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	cap := l.BackoffMax
	if cap <= 0 || cap > interval {
		cap = interval
	}
	n := l.Health().ConsecutiveFailures
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= cap {
			break
		}
	}
	if d > cap {
		d = cap
	}
	return d
}

// Run refreshes on the configured interval until the context is cancelled,
// retrying failed refreshes with capped exponential backoff instead of
// waiting out the full interval.
func (l *Loader) Run(ctx context.Context) {
	interval := l.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	l.run(ctx, interval)
}

// run is Run with an explicit first delay (tests start mid-backoff).
func (l *Loader) run(ctx context.Context, first time.Duration) {
	interval := l.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	timer := time.NewTimer(first)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
			_, err := l.RefreshOnce()
			timer.Reset(l.nextDelay(interval, err != nil))
		}
	}
}

// LoadSamples draws the per-table sample frames the ByteCard estimator's
// RBX featurization needs and installs them on the estimator.
func LoadSamples(db *storage.Database, est *core.Estimator, maxRows int, seed int64) {
	if maxRows <= 0 {
		maxRows = DefaultSampleRows
	}
	for _, name := range db.TableNames() {
		t := db.Table(name)
		res := sample.NewReservoir(maxRows, seed^int64(t.NumRows()))
		for i := 0; i < t.NumRows(); i++ {
			res.Offer(t.Row(i))
		}
		est.Samples[name] = sample.NewFrame(t.ColumnNames(), res.Rows(), int64(t.NumRows()))
	}
}
