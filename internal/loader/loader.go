// Package loader implements the Model Loader: a background task (a peer of
// compaction under the warehouse's Daemon Manager) that ships artifacts
// from the model store into the Inference Engine on a timestamp basis —
// only strictly newer versions are installed — and maintains the in-memory
// per-table sample frames RBX featurization reads.
package loader

import (
	"context"
	"fmt"
	"time"

	"bytecard/internal/core"
	"bytecard/internal/modelstore"
	"bytecard/internal/sample"
	"bytecard/internal/storage"
)

// DefaultInterval is the paper's default refresh cadence.
const DefaultInterval = time.Hour

// DefaultSampleRows caps the per-table RBX sample frame (the paper loads
// under 10 million rows per table; bench scale needs far less).
const DefaultSampleRows = 20000

// Loader periodically refreshes the Inference Engine from the store.
type Loader struct {
	Store  *modelstore.Store
	Engine *core.InferenceEngine
	// Interval between refreshes (default one hour).
	Interval time.Duration

	installed map[string]time.Time
	// LastError records the most recent load failure for observability.
	LastError error
}

// New creates a loader.
func New(store *modelstore.Store, engine *core.InferenceEngine) *Loader {
	return &Loader{
		Store:     store,
		Engine:    engine,
		Interval:  DefaultInterval,
		installed: map[string]time.Time{},
	}
}

// RefreshOnce installs every artifact whose timestamp is newer than the
// installed version, returning how many models were (re)loaded. Invalid
// artifacts are skipped (and reported) rather than aborting the sweep —
// one bad model must not block the rest.
func (l *Loader) RefreshOnce() (int, error) {
	manifests, err := l.Store.List()
	if err != nil {
		return 0, err
	}
	loaded := 0
	var firstErr error
	for _, m := range manifests {
		prev, ok := l.installed[m.Name]
		if ok && !m.Timestamp.After(prev) {
			continue
		}
		art, err := l.Store.Get(m.Name)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := l.Engine.LoadModel(art); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("loader: %s: %w", m.Name, err)
			}
			continue
		}
		l.installed[m.Name] = m.Timestamp
		loaded++
	}
	l.LastError = firstErr
	return loaded, firstErr
}

// Run refreshes on the configured interval until the context is cancelled.
func (l *Loader) Run(ctx context.Context) {
	interval := l.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			_, _ = l.RefreshOnce()
		}
	}
}

// LoadSamples draws the per-table sample frames the ByteCard estimator's
// RBX featurization needs and installs them on the estimator.
func LoadSamples(db *storage.Database, est *core.Estimator, maxRows int, seed int64) {
	if maxRows <= 0 {
		maxRows = DefaultSampleRows
	}
	for _, name := range db.TableNames() {
		t := db.Table(name)
		res := sample.NewReservoir(maxRows, seed^int64(t.NumRows()))
		for i := 0; i < t.NumRows(); i++ {
			res.Offer(t.Row(i))
		}
		est.Samples[name] = sample.NewFrame(t.ColumnNames(), res.Rows(), int64(t.NumRows()))
	}
}
