package loader

import (
	"context"
	"os"
	"testing"
	"time"

	"bytecard/internal/core"
	"bytecard/internal/datagen"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
)

func trainedStore(t *testing.T) (*modelstore.Store, *datagen.Dataset, *modelforge.Service) {
	t.Helper()
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 61})
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	forge := modelforge.New("toy", ds.DB, ds.Schema, store, modelforge.Config{
		SampleRows: 500, BucketCount: 12,
		RBX:  rbx.TrainConfig{Columns: 50, Epochs: 2, MaxPop: 5000, Seed: 1},
		Seed: 1,
	})
	if _, err := forge.TrainAll(); err != nil {
		t.Fatal(err)
	}
	return store, ds, forge
}

func TestRefreshOnceLoadsEverything(t *testing.T) {
	store, _, _ := trainedStore(t)
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	n, err := l.RefreshOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // 2 BN + factorjoin + rbx
		t.Errorf("loaded = %d, want 4", n)
	}
	// Second refresh with no changes loads nothing.
	n, err = l.RefreshOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("re-refresh loaded %d, want 0", n)
	}
}

func TestRefreshPicksUpNewTimestamps(t *testing.T) {
	store, _, forge := trainedStore(t)
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	if _, err := l.RefreshOnce(); err != nil {
		t.Fatal(err)
	}
	// Retrain one table with a later clock.
	if err := forgeWithClock(forge, time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	n, err := l.RefreshOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("refresh after retrain loaded %d, want 1", n)
	}
}

func forgeWithClock(forge *modelforge.Service, at time.Time) error {
	// NotifyIngest crossing the threshold retrains the table; inject the
	// clock through the exported test hook on Config via a fresh train.
	_, err := forge.TrainTableAt("fact", at)
	return err
}

func TestRefreshSkipsCorruptArtifact(t *testing.T) {
	store, _, _ := trainedStore(t)
	// Inject a corrupt artifact.
	err := store.Put(core.Artifact{
		Name: "toy/bn/corrupt", Kind: core.KindBN, Table: "corrupt",
		Timestamp: time.Now(), Data: []byte("garbage"),
	})
	if err != nil {
		t.Fatal(err)
	}
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	n, err := l.RefreshOnce()
	if err == nil {
		t.Error("refresh must report the corrupt artifact")
	}
	if n != 4 {
		t.Errorf("valid artifacts loaded = %d, want 4 despite corruption", n)
	}
	if l.LastError == nil {
		t.Error("LastError must record the failure")
	}
}

func TestRunLoop(t *testing.T) {
	store, _, _ := trainedStore(t)
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	l.Interval = 5 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		l.Run(ctx)
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for infer.Snapshot().Loads < 4 {
		select {
		case <-deadline:
			t.Fatal("loader loop never installed models")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-done
}

func TestLoadSamples(t *testing.T) {
	store, ds, _ := trainedStore(t)
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	if _, err := l.RefreshOnce(); err != nil {
		t.Fatal(err)
	}
	est := core.NewEstimator(infer, nil)
	LoadSamples(ds.DB, est, 100, 3)
	if len(est.Samples) != 2 {
		t.Fatalf("samples = %d tables, want 2", len(est.Samples))
	}
	f := est.Samples["fact"]
	if f.Len() == 0 || f.Len() > 100 {
		t.Errorf("fact sample = %d rows", f.Len())
	}
	if f.PopSize() != int64(ds.DB.Table("fact").NumRows()) {
		t.Errorf("population = %d", f.PopSize())
	}
}

func TestRefreshOnceUnreadableStore(t *testing.T) {
	dir := t.TempDir()
	store, err := modelstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a manifest so List fails.
	if err := os.WriteFile(dir+"/broken.json", []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := New(store, core.NewInferenceEngine(core.Options{}))
	if _, err := l.RefreshOnce(); err == nil {
		t.Error("corrupted manifest must surface an error")
	}
}
