package loader

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bytecard/internal/core"
	"bytecard/internal/datagen"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
)

func trainedStore(t *testing.T) (*modelstore.Store, *datagen.Dataset, *modelforge.Service) {
	t.Helper()
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 61})
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	forge := modelforge.New("toy", ds.DB, ds.Schema, store, modelforge.Config{
		SampleRows: 500, BucketCount: 12,
		RBX:  rbx.TrainConfig{Columns: 50, Epochs: 2, MaxPop: 5000, Seed: 1},
		Seed: 1,
	})
	if _, err := forge.TrainAll(); err != nil {
		t.Fatal(err)
	}
	return store, ds, forge
}

func TestRefreshOnceLoadsEverything(t *testing.T) {
	store, _, _ := trainedStore(t)
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	n, err := l.RefreshOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // 2 BN + factorjoin + rbx
		t.Errorf("loaded = %d, want 4", n)
	}
	// Second refresh with no changes loads nothing.
	n, err = l.RefreshOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("re-refresh loaded %d, want 0", n)
	}
}

func TestRefreshPicksUpNewTimestamps(t *testing.T) {
	store, _, forge := trainedStore(t)
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	if _, err := l.RefreshOnce(); err != nil {
		t.Fatal(err)
	}
	// Retrain one table with a later clock.
	if err := forgeWithClock(forge, time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	n, err := l.RefreshOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("refresh after retrain loaded %d, want 1", n)
	}
}

func forgeWithClock(forge *modelforge.Service, at time.Time) error {
	// NotifyIngest crossing the threshold retrains the table; inject the
	// clock through the exported test hook on Config via a fresh train.
	_, err := forge.TrainTableAt("fact", at)
	return err
}

func TestRefreshSkipsCorruptArtifact(t *testing.T) {
	store, _, _ := trainedStore(t)
	// Inject a corrupt artifact.
	err := store.Put(core.Artifact{
		Name: "toy/bn/corrupt", Kind: core.KindBN, Table: "corrupt",
		Timestamp: time.Now(), Data: []byte("garbage"),
	})
	if err != nil {
		t.Fatal(err)
	}
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	n, err := l.RefreshOnce()
	if err == nil {
		t.Error("refresh must report the corrupt artifact")
	}
	if n != 4 {
		t.Errorf("valid artifacts loaded = %d, want 4 despite corruption", n)
	}
	if l.Health().LastError == nil {
		t.Error("Health().LastError must record the failure")
	}
}

// TestRefreshSkipsTruncatedFile corrupts stored artifacts at the file level
// (truncation and byte garbling — what a torn upload or disk fault leaves
// behind) and verifies the sweep skips them while the intact artifacts all
// load.
func TestRefreshSkipsTruncatedFile(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 61})
	dir := t.TempDir()
	store, err := modelstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	forge := modelforge.New("toy", ds.DB, ds.Schema, store, modelforge.Config{
		SampleRows: 500, BucketCount: 12,
		RBX:  rbx.TrainConfig{Columns: 50, Epochs: 2, MaxPop: 5000, Seed: 1},
		Seed: 1,
	})
	if _, err := forge.TrainAll(); err != nil {
		t.Fatal(err)
	}
	// Truncate one payload and garble another, in place on disk.
	manifests, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	var corrupted []string
	for _, m := range manifests {
		if m.Kind != core.KindBN {
			continue
		}
		art, err := store.Get(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		data := art.Data
		if len(corrupted) == 0 {
			data = data[:len(data)/3] // truncated
		} else {
			data = append([]byte{}, data...)
			for i := 0; i < len(data); i += 7 {
				data[i] ^= 0xA5 // garbled
			}
		}
		if err := os.WriteFile(filepath.Join(dir, m.File), data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = append(corrupted, m.Table)
		if len(corrupted) == 2 {
			break
		}
	}
	if len(corrupted) != 2 {
		t.Fatalf("corrupted %d BN artifacts, want 2", len(corrupted))
	}
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	n, err := l.RefreshOnce()
	if err == nil {
		t.Error("refresh must report the corrupt payloads")
	}
	if n != 2 { // factorjoin + rbx still load
		t.Errorf("valid artifacts loaded = %d, want 2 despite corruption", n)
	}
	h := l.Health()
	if h.LastError == nil || h.ConsecutiveFailures != 1 {
		t.Errorf("health = %+v, want recorded failure", h)
	}
	// Retraining rewrites the payloads; the next sweep heals.
	for _, table := range corrupted {
		if _, err := forge.TrainTableAt(table, time.Now().Add(time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.RefreshOnce(); err != nil {
		t.Fatalf("refresh after repair: %v", err)
	}
	h = l.Health()
	if h.LastError != nil || h.ConsecutiveFailures != 0 || h.LastSuccess.IsZero() {
		t.Errorf("healed health = %+v", h)
	}
}

// TestRefreshOnceConcurrent exercises RefreshOnce from many goroutines (as
// System.RefreshModels racing the background Run loop would); run under
// -race this guards the installed-map and health-state mutex.
func TestRefreshOnceConcurrent(t *testing.T) {
	store, _, forge := trainedStore(t)
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				_, _ = l.RefreshOnce()
				_ = l.Health()
				if g == 0 {
					_, _ = forge.TrainTableAt("fact", time.Now().Add(time.Duration(i)*time.Minute))
				}
			}
		}(g)
	}
	wg.Wait()
	if infer.Snapshot().Loads < 4 {
		t.Errorf("loads = %d, want >= 4", infer.Snapshot().Loads)
	}
}

func TestRunRetriesWithBackoff(t *testing.T) {
	dir := t.TempDir()
	store, err := modelstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A broken manifest no longer fails List (the store quarantines it),
	// so break the store harder: remove the directory out from under it.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	l := New(store, core.NewInferenceEngine(core.Options{}))
	l.Interval = time.Hour // retries must come from backoff, not the interval
	l.BackoffBase = time.Millisecond
	l.BackoffMax = 4 * time.Millisecond
	// Trigger the first attempt quickly: RefreshOnce directly seeds the
	// failure count, then Run's timer fires after the backoff delay.
	if _, err := l.RefreshOnce(); err == nil {
		t.Fatal("broken store must fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		l.run(ctx, l.nextDelay(time.Hour, true))
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for l.Health().ConsecutiveFailures < 4 {
		select {
		case <-deadline:
			t.Fatalf("backoff retries not happening: %+v", l.Health())
		case <-time.After(time.Millisecond):
		}
	}
	// Heal the store: the loop recovers on the next backed-off retry.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for l.Health().ConsecutiveFailures != 0 {
		select {
		case <-deadline:
			t.Fatalf("loop never recovered: %+v", l.Health())
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
}

func TestNextDelay(t *testing.T) {
	l := &Loader{BackoffBase: time.Second, BackoffMax: 8 * time.Second}
	if d := l.nextDelay(time.Hour, false); d != time.Hour {
		t.Errorf("success delay = %v", d)
	}
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second} {
		l.failures = i + 1
		if d := l.nextDelay(time.Hour, true); d != want {
			t.Errorf("failure %d delay = %v, want %v", i+1, d, want)
		}
	}
	// The cap never exceeds the refresh interval itself.
	l.failures = 10
	if d := l.nextDelay(3*time.Second, true); d != 3*time.Second {
		t.Errorf("interval-capped delay = %v", d)
	}
}

func TestRunLoop(t *testing.T) {
	store, _, _ := trainedStore(t)
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	l.Interval = 5 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		l.Run(ctx)
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for infer.Snapshot().Loads < 4 {
		select {
		case <-deadline:
			t.Fatal("loader loop never installed models")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-done
}

func TestLoadSamples(t *testing.T) {
	store, ds, _ := trainedStore(t)
	infer := core.NewInferenceEngine(core.Options{})
	l := New(store, infer)
	if _, err := l.RefreshOnce(); err != nil {
		t.Fatal(err)
	}
	est := core.NewEstimator(infer, nil)
	LoadSamples(ds.DB, est, 100, 3)
	if len(est.Samples) != 2 {
		t.Fatalf("samples = %d tables, want 2", len(est.Samples))
	}
	f := est.Samples["fact"]
	if f.Len() == 0 || f.Len() > 100 {
		t.Errorf("fact sample = %d rows", f.Len())
	}
	if f.PopSize() != int64(ds.DB.Table("fact").NumRows()) {
		t.Errorf("population = %d", f.PopSize())
	}
}

func TestRefreshOnceUnreadableStore(t *testing.T) {
	dir := t.TempDir()
	store, err := modelstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A corrupted manifest is quarantined, not fatal: the refresh sweeps
	// past it and the incident shows in the health snapshot.
	if err := os.WriteFile(dir+"/broken.json", []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := New(store, core.NewInferenceEngine(core.Options{}))
	if _, err := l.RefreshOnce(); err != nil {
		t.Errorf("quarantined manifest must not fail the refresh: %v", err)
	}
	if h := l.Snapshot(); h.Store.BadManifests != 1 {
		t.Errorf("store health = %+v, want one bad manifest", h.Store)
	}
	// An unreadable store directory is still a hard failure.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := l.RefreshOnce(); err == nil {
		t.Error("missing store directory must surface an error")
	}
}
