package spn

import (
	"math"
	"math/rand"
	"testing"

	"bytecard/internal/datagen"
	"bytecard/internal/expr"
)

func corrData(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, n)
	for i := range data {
		a := rng.Float64() * 100
		b := a*2 + rng.NormFloat64()*5 // correlated with a
		c := rng.Float64() * 10        // independent
		data[i] = []float64{a, b, c}
	}
	return data
}

func eq(col string, v float64) expr.Constraint {
	c := expr.NewConstraint(col)
	c.Add(expr.OpEq, v, true)
	return c
}

func lt(col string, v float64) expr.Constraint {
	c := expr.NewConstraint(col)
	c.Add(expr.OpLt, v, true)
	return c
}

func TestTrainAndValidate(t *testing.T) {
	m, err := Train([]string{"a", "b", "c"}, corrData(4000, 1), TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.TrainSeconds <= 0 || m.SizeBytes() <= 0 {
		t.Error("metadata missing")
	}
	// Structure should contain at least one product node separating the
	// independent column c.
	var hasProduct bool
	for _, n := range m.Nodes {
		if n.Kind == KindProduct {
			hasProduct = true
		}
	}
	if !hasProduct {
		t.Error("expected a product split for the independent column")
	}
}

func TestProbUnconstrainedIsOne(t *testing.T) {
	m, _ := Train([]string{"a", "b", "c"}, corrData(2000, 2), TrainConfig{Seed: 2})
	p, err := m.Prob(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-9 {
		t.Errorf("P() = %g, want 1", p)
	}
}

func TestProbRangeAccuracy(t *testing.T) {
	data := corrData(20000, 3)
	m, _ := Train([]string{"a", "b", "c"}, data, TrainConfig{Seed: 3})
	p, err := m.Prob([]expr.Constraint{lt("a", 50)})
	if err != nil {
		t.Fatal(err)
	}
	var truth float64
	for _, r := range data {
		if r[0] < 50 {
			truth++
		}
	}
	truth /= float64(len(data))
	if math.Abs(p-truth) > 0.05 {
		t.Errorf("P(a<50) = %g, want %g", p, truth)
	}
}

func TestProbCapturesCorrelation(t *testing.T) {
	data := corrData(20000, 4)
	m, _ := Train([]string{"a", "b", "c"}, data, TrainConfig{Seed: 4})
	// P(a<30 ∧ b<60): under b≈2a these nearly coincide (~0.3), while the
	// independence estimate would be ~0.09.
	p, err := m.Prob([]expr.Constraint{lt("a", 30), lt("b", 60)})
	if err != nil {
		t.Fatal(err)
	}
	var truth float64
	for _, r := range data {
		if r[0] < 30 && r[1] < 60 {
			truth++
		}
	}
	truth /= float64(len(data))
	if p < truth*0.5 || p > truth*1.8 {
		t.Errorf("P(a<30,b<60) = %g, want ~%g (independence would give ~%g)", p, truth, 0.3*0.3)
	}
}

func TestEstimateRows(t *testing.T) {
	data := corrData(5000, 5)
	m, _ := Train([]string{"a", "b", "c"}, data, TrainConfig{Seed: 5})
	est, err := m.EstimateRows([]expr.Constraint{lt("c", 5)})
	if err != nil {
		t.Fatal(err)
	}
	if est < 1500 || est > 3500 {
		t.Errorf("EstimateRows = %g, want ~2500", est)
	}
}

func TestUnknownColumn(t *testing.T) {
	m, _ := Train([]string{"a"}, [][]float64{{1}, {2}}, TrainConfig{Seed: 1})
	if _, err := m.Prob([]expr.Constraint{eq("zz", 1)}); err == nil {
		t.Error("unknown column must error")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, TrainConfig{}); err == nil {
		t.Error("empty data must fail")
	}
	if _, err := Train([]string{"a", "b"}, [][]float64{{1}}, TrainConfig{}); err == nil {
		t.Error("ragged data must fail")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	m, _ := Train([]string{"a", "b", "c"}, corrData(2000, 6), TrainConfig{Seed: 6})
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	c := []expr.Constraint{lt("a", 40)}
	a, _ := m.Prob(c)
	b, _ := m2.Prob(c)
	if a != b {
		t.Errorf("roundtrip changed probability: %g vs %g", a, b)
	}
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("garbage must fail decode")
	}
}

func TestValidateCorruption(t *testing.T) {
	m, _ := Train([]string{"a", "b", "c"}, corrData(2000, 7), TrainConfig{Seed: 7})
	for i := range m.Nodes {
		if m.Nodes[i].Kind == KindSum {
			m.Nodes[i].Weights[0] += 0.5
			break
		}
	}
	// Only fails if a sum node existed; force one invalid node otherwise.
	m.Nodes = append(m.Nodes, Node{Kind: KindSum, Children: []int{0}, Weights: []float64{0.2}})
	if err := m.Validate(); err == nil {
		t.Error("corrupted weights must fail validation")
	}
}

func TestDenormalizeToy(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 8})
	cols, rows, err := Denormalize(ds.DB, ds.Schema.JoinPatterns(), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	// fact(4 cols) + dim(2 cols) = 6 qualified columns.
	if len(cols) != 6 {
		t.Fatalf("cols = %v", cols)
	}
	if len(rows) == 0 {
		t.Fatal("no denormalized rows")
	}
	// Every row must satisfy the join: fact.dim_id == dim.id.
	var di, fi int = -1, -1
	for i, c := range cols {
		if c == "fact.dim_id" {
			fi = i
		}
		if c == "dim.id" {
			di = i
		}
	}
	for _, r := range rows {
		if r[fi] != r[di] {
			t.Fatalf("join violated: %g != %g", r[fi], r[di])
		}
	}
}

func TestDenormalizeTrainsSPN(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 9})
	cols, rows, err := Denormalize(ds.DB, ds.Schema.JoinPatterns(), 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(cols, rows, TrainConfig{Seed: 9, MinRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sanity: probability of flag=1 over the join should be near the
	// fact-side marginal (~0.5).
	p, err := m.Prob([]expr.Constraint{eq("fact.flag", 1)})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.2 || p > 0.8 {
		t.Errorf("P(flag=1) = %g, want ~0.5", p)
	}
}

func TestDenormalizeErrors(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 10})
	if _, _, err := Denormalize(ds.DB, nil, 100, 1); err == nil {
		t.Error("no patterns must fail")
	}
}
