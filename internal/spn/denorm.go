package spn

import (
	"fmt"
	"math/rand"

	"bytecard/internal/catalog"
	"bytecard/internal/storage"
)

// Denormalize materializes a row-major sample of the full join across the
// given join patterns, starting from the largest table and repeatedly
// looking up join partners (uniformly sampling one partner per step, which
// preserves per-row distributions while bounding the sample). This is the
// denormalization step DeepDB-style and BayesCard-style multi-table models
// require — and whose cost Table 3 charges against them.
//
// The returned column names are qualified "table.column".
func Denormalize(db *storage.Database, patterns []catalog.JoinPattern, maxRows int, seed int64) ([]string, [][]float64, error) {
	if len(patterns) == 0 {
		return nil, nil, fmt.Errorf("spn: no join patterns to denormalize")
	}
	if maxRows <= 0 {
		maxRows = 10000
	}
	rng := rand.New(rand.NewSource(seed))

	// Collect the table set and pick the largest as the anchor fact table.
	tables := map[string]bool{}
	for _, p := range patterns {
		tables[p.Left.Table] = true
		tables[p.Right.Table] = true
	}
	anchor := ""
	for t := range tables {
		if db.Table(t) == nil {
			return nil, nil, fmt.Errorf("spn: unknown table %s in join patterns", t)
		}
		if anchor == "" || db.Table(t).NumRows() > db.Table(anchor).NumRows() {
			anchor = t
		}
	}

	// Build partner indexes: for each pattern, map key value → row ids on
	// both sides so the walk can traverse in either direction.
	type index struct {
		pattern catalog.JoinPattern
		byLeft  map[float64][]int32
		byRight map[float64][]int32
	}
	indexes := make([]index, len(patterns))
	for i, p := range patterns {
		idx := index{pattern: p, byLeft: map[float64][]int32{}, byRight: map[float64][]int32{}}
		lt, rt := db.Table(p.Left.Table), db.Table(p.Right.Table)
		lc, rc := lt.ColByName(p.Left.Column), rt.ColByName(p.Right.Column)
		if lc == nil || rc == nil {
			return nil, nil, fmt.Errorf("spn: join pattern %s references missing columns", p)
		}
		for r := 0; r < lt.NumRows(); r++ {
			v := lc.Numeric(r)
			idx.byLeft[v] = append(idx.byLeft[v], int32(r))
		}
		for r := 0; r < rt.NumRows(); r++ {
			v := rc.Numeric(r)
			idx.byRight[v] = append(idx.byRight[v], int32(r))
		}
		indexes[i] = idx
	}

	// Column layout: qualified columns of every joined table.
	var cols []string
	colOf := map[string][2]int{} // table → [start, end)
	var order []string
	order = append(order, anchor)
	for t := range tables {
		if t != anchor {
			order = append(order, t)
		}
	}
	for _, t := range order {
		start := len(cols)
		for _, c := range db.Table(t).ColumnNames() {
			cols = append(cols, t+"."+c)
		}
		colOf[t] = [2]int{start, len(cols)}
	}

	anchorTab := db.Table(anchor)
	n := anchorTab.NumRows()
	step := 1
	if n > maxRows {
		step = n / maxRows
	}
	var data [][]float64
	for r := 0; r < n; r += step {
		rowIDs := map[string]int32{anchor: int32(r)}
		// Walk patterns to fixpoint, sampling one partner per pattern.
		complete := true
		for changed := true; changed; {
			changed = false
			for _, idx := range indexes {
				p := idx.pattern
				_, haveL := rowIDs[p.Left.Table]
				_, haveR := rowIDs[p.Right.Table]
				if haveL == haveR {
					continue
				}
				if haveL {
					v := db.Table(p.Left.Table).ColByName(p.Left.Column).Numeric(int(rowIDs[p.Left.Table]))
					partners := idx.byRight[v]
					if len(partners) == 0 {
						complete = false
						break
					}
					rowIDs[p.Right.Table] = partners[rng.Intn(len(partners))]
				} else {
					v := db.Table(p.Right.Table).ColByName(p.Right.Column).Numeric(int(rowIDs[p.Right.Table]))
					partners := idx.byLeft[v]
					if len(partners) == 0 {
						complete = false
						break
					}
					rowIDs[p.Left.Table] = partners[rng.Intn(len(partners))]
				}
				changed = true
			}
			if !complete {
				break
			}
		}
		if !complete || len(rowIDs) != len(tables) {
			continue // inner-join semantics: drop rows without partners
		}
		row := make([]float64, len(cols))
		for t, rid := range rowIDs {
			span := colOf[t]
			tab := db.Table(t)
			for ci := 0; ci < tab.NumCols(); ci++ {
				row[span[0]+ci] = tab.Col(ci).Numeric(int(rid))
			}
		}
		data = append(data, row)
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("spn: denormalization produced no complete rows")
	}
	return cols, data, nil
}
