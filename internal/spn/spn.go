// Package spn implements the DeepDB baseline: sum-product networks learned
// over (optionally denormalized) row samples. Column splits come from an
// independence test over pairwise correlation; row splits from 2-means
// clustering; leaves are one-dimensional histograms. The paper uses DeepDB
// as a Table 3 comparison point — its denormalized join samples are what
// make its training slower and its models larger than ByteCard's.
package spn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"bytecard/internal/expr"
	"bytecard/internal/histogram"
)

// NodeKind discriminates serialized SPN nodes.
type NodeKind int

// Node kinds.
const (
	KindLeaf NodeKind = iota
	KindProduct
	KindSum
)

// Node is one SPN node in a flattened, gob-friendly representation.
type Node struct {
	Kind NodeKind
	// Children indexes into Model.Nodes.
	Children []int
	// Weights pairs with Children for sum nodes.
	Weights []float64
	// Col and Hist define leaves.
	Col  int
	Hist *histogram.EquiHeight
}

// Model is a trained sum-product network over named columns.
type Model struct {
	Cols  []string
	Nodes []Node
	// Root indexes Model.Nodes.
	Root int
	// Rows is the training population size.
	Rows float64
	// TrainSeconds records training wall time (including denormalization
	// when the caller charges it here).
	TrainSeconds float64
}

// TrainConfig controls structure learning.
type TrainConfig struct {
	// MinRows stops row splitting (default 256).
	MinRows int
	// CorrThreshold groups columns whose |correlation| exceeds it
	// (default 0.3).
	CorrThreshold float64
	// MaxDepth caps recursion (default 12).
	MaxDepth int
	// LeafBuckets sizes leaf histograms (default 48).
	LeafBuckets int
	Seed        int64
}

func (c *TrainConfig) fill() {
	if c.MinRows <= 0 {
		c.MinRows = 256
	}
	if c.CorrThreshold <= 0 {
		c.CorrThreshold = 0.3
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.LeafBuckets <= 0 {
		c.LeafBuckets = 48
	}
}

// Train learns an SPN from row-major data (data[r][c]).
func Train(cols []string, data [][]float64, cfg TrainConfig) (*Model, error) {
	if len(cols) == 0 || len(data) == 0 {
		return nil, errors.New("spn: empty training data")
	}
	for _, row := range data {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("spn: row width %d != %d columns", len(row), len(cols))
		}
	}
	cfg.fill()
	start := time.Now()
	m := &Model{Cols: cols, Rows: float64(len(data))}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	colIdx := make([]int, len(cols))
	for i := range colIdx {
		colIdx[i] = i
	}
	m.Root = m.build(data, colIdx, cfg, rng, 0)
	m.TrainSeconds = time.Since(start).Seconds()
	return m, nil
}

// build recursively learns one node over the given rows and column subset,
// returning its index in m.Nodes.
func (m *Model) build(rows [][]float64, cols []int, cfg TrainConfig, rng *rand.Rand, depth int) int {
	if len(cols) == 1 {
		return m.addLeaf(rows, cols[0], cfg)
	}
	if len(rows) < cfg.MinRows || depth >= cfg.MaxDepth {
		// Independence fallback: product of leaves.
		node := Node{Kind: KindProduct}
		for _, c := range cols {
			node.Children = append(node.Children, m.addLeaf(rows, c, cfg))
		}
		return m.add(node)
	}
	// Column split: connected components under |corr| > threshold.
	groups := correlationGroups(rows, cols, cfg.CorrThreshold)
	if len(groups) > 1 {
		node := Node{Kind: KindProduct}
		for _, g := range groups {
			node.Children = append(node.Children, m.build(rows, g, cfg, rng, depth+1))
		}
		return m.add(node)
	}
	// Row split: 2-means over normalized rows.
	a, b := kmeans2(rows, cols, rng)
	if len(a) == 0 || len(b) == 0 {
		node := Node{Kind: KindProduct}
		for _, c := range cols {
			node.Children = append(node.Children, m.addLeaf(rows, c, cfg))
		}
		return m.add(node)
	}
	node := Node{Kind: KindSum}
	node.Children = append(node.Children, m.build(a, cols, cfg, rng, depth+1))
	node.Children = append(node.Children, m.build(b, cols, cfg, rng, depth+1))
	node.Weights = []float64{
		float64(len(a)) / float64(len(rows)),
		float64(len(b)) / float64(len(rows)),
	}
	return m.add(node)
}

func (m *Model) add(n Node) int {
	m.Nodes = append(m.Nodes, n)
	return len(m.Nodes) - 1
}

func (m *Model) addLeaf(rows [][]float64, col int, cfg TrainConfig) int {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = r[col]
	}
	return m.add(Node{Kind: KindLeaf, Col: col, Hist: histogram.BuildEquiHeight(vals, cfg.LeafBuckets)})
}

// correlationGroups partitions cols into connected components of the
// |pearson| > threshold graph.
func correlationGroups(rows [][]float64, cols []int, threshold float64) [][]int {
	n := len(cols)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(pearson(rows, cols[i], cols[j])) > threshold {
				parent[find(i)] = find(j)
			}
		}
	}
	byRoot := map[int][]int{}
	for i := range cols {
		r := find(i)
		byRoot[r] = append(byRoot[r], cols[i])
	}
	var out [][]int
	for i := 0; i < n; i++ {
		if find(i) == i {
			out = append(out, byRoot[i])
		}
	}
	return out
}

func pearson(rows [][]float64, a, b int) float64 {
	n := float64(len(rows))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, r := range rows {
		x, y := r[a], r[b]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	den := math.Sqrt((n*sxx - sx*sx) * (n*syy - sy*sy))
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// kmeans2 splits rows into two clusters over the column subset.
func kmeans2(rows [][]float64, cols []int, rng *rand.Rand) (a, b [][]float64) {
	// Normalize per column to balance scales.
	mins := make([]float64, len(cols))
	maxs := make([]float64, len(cols))
	for i := range cols {
		mins[i], maxs[i] = math.Inf(1), math.Inf(-1)
	}
	for _, r := range rows {
		for i, c := range cols {
			if r[c] < mins[i] {
				mins[i] = r[c]
			}
			if r[c] > maxs[i] {
				maxs[i] = r[c]
			}
		}
	}
	norm := func(r []float64, i int) float64 {
		c := cols[i]
		if maxs[i] <= mins[i] {
			return 0
		}
		return (r[c] - mins[i]) / (maxs[i] - mins[i])
	}
	c1 := rows[rng.Intn(len(rows))]
	c2 := rows[rng.Intn(len(rows))]
	cent1 := make([]float64, len(cols))
	cent2 := make([]float64, len(cols))
	for i := range cols {
		cent1[i], cent2[i] = norm(c1, i), norm(c2, i)
	}
	assign := make([]bool, len(rows))
	for iter := 0; iter < 8; iter++ {
		var n1, n2 float64
		s1 := make([]float64, len(cols))
		s2 := make([]float64, len(cols))
		for ri, r := range rows {
			var d1, d2 float64
			for i := range cols {
				v := norm(r, i)
				d1 += (v - cent1[i]) * (v - cent1[i])
				d2 += (v - cent2[i]) * (v - cent2[i])
			}
			assign[ri] = d2 < d1
			if assign[ri] {
				n2++
				for i := range cols {
					s2[i] += norm(r, i)
				}
			} else {
				n1++
				for i := range cols {
					s1[i] += norm(r, i)
				}
			}
		}
		if n1 == 0 || n2 == 0 {
			break
		}
		for i := range cols {
			cent1[i] = s1[i] / n1
			cent2[i] = s2[i] / n2
		}
	}
	for ri, r := range rows {
		if assign[ri] {
			b = append(b, r)
		} else {
			a = append(a, r)
		}
	}
	return a, b
}

// Prob evaluates the probability of a conjunctive box: constraints indexed
// by column name; unconstrained columns integrate to one.
func (m *Model) Prob(constraints []expr.Constraint) (float64, error) {
	byCol := map[int]expr.Constraint{}
	for _, c := range constraints {
		idx := -1
		for i, name := range m.Cols {
			if name == c.Col {
				idx = i
				break
			}
		}
		if idx < 0 {
			return 0, fmt.Errorf("spn: unknown column %q", c.Col)
		}
		byCol[idx] = c
	}
	return m.eval(m.Root, byCol), nil
}

func (m *Model) eval(idx int, byCol map[int]expr.Constraint) float64 {
	n := &m.Nodes[idx]
	switch n.Kind {
	case KindLeaf:
		c, ok := byCol[n.Col]
		if !ok {
			return 1
		}
		if c.Empty {
			return 0
		}
		var sel float64
		if c.HasEq {
			sel = n.Hist.SelEq(c.Lo)
		} else {
			sel = n.Hist.SelRange(c.Lo, c.Hi, c.LoIncl, c.HiIncl)
		}
		for _, ne := range c.Ne {
			if ne >= c.Lo && ne <= c.Hi {
				sel -= n.Hist.SelEq(ne)
			}
		}
		if sel < 0 {
			sel = 0
		}
		return sel
	case KindProduct:
		p := 1.0
		for _, ch := range n.Children {
			p *= m.eval(ch, byCol)
		}
		return p
	case KindSum:
		var p float64
		for i, ch := range n.Children {
			p += n.Weights[i] * m.eval(ch, byCol)
		}
		return p
	default:
		panic("spn: unknown node kind")
	}
}

// EstimateRows scales Prob by the training population.
func (m *Model) EstimateRows(constraints []expr.Constraint) (float64, error) {
	p, err := m.Prob(constraints)
	if err != nil {
		return 0, err
	}
	return p * m.Rows, nil
}

// SizeBytes reports the model footprint.
func (m *Model) SizeBytes() int64 {
	var total int64
	for i := range m.Nodes {
		total += 32
		total += int64(len(m.Nodes[i].Children)+len(m.Nodes[i].Weights)) * 8
		if m.Nodes[i].Hist != nil {
			h := m.Nodes[i].Hist
			total += int64(len(h.Bounds)+len(h.Counts)+len(h.Distinct)) * 8
		}
	}
	return total
}

// Validate checks structural sanity.
func (m *Model) Validate() error {
	if len(m.Nodes) == 0 {
		return errors.New("spn: empty model")
	}
	if m.Root < 0 || m.Root >= len(m.Nodes) {
		return fmt.Errorf("spn: root %d out of range", m.Root)
	}
	for i := range m.Nodes {
		n := &m.Nodes[i]
		switch n.Kind {
		case KindLeaf:
			if n.Hist == nil {
				return fmt.Errorf("spn: leaf %d missing histogram", i)
			}
		case KindSum:
			if len(n.Weights) != len(n.Children) {
				return fmt.Errorf("spn: sum %d weight/child mismatch", i)
			}
			var sum float64
			for _, w := range n.Weights {
				sum += w
			}
			if math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("spn: sum %d weights total %g", i, sum)
			}
			fallthrough
		case KindProduct:
			for _, ch := range n.Children {
				if ch < 0 || ch >= len(m.Nodes) {
					return fmt.Errorf("spn: node %d child %d out of range", i, ch)
				}
			}
		}
	}
	return nil
}

// Encode serializes the model with gob.
func (m *Model) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserializes and validates a model.
func Decode(data []byte) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
