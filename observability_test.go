package bytecard

import (
	"encoding/json"
	"strings"
	"testing"

	"bytecard/internal/faultinject"
	"bytecard/internal/obs"
)

// TestEstimateDetailTracesModelSources drives one query per model family
// through the Detail API and checks that the trace attributes the estimate
// to the model the paper's architecture routes it to.
func TestEstimateDetailTracesModelSources(t *testing.T) {
	sys := openToy(t)
	cases := []struct {
		name   string
		sql    string
		ndv    bool
		source string
	}{
		{"single-table-bn", "SELECT COUNT(*) FROM fact WHERE val < 50", false, "bn"},
		{"join-factorjoin", "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat <= 3", false, "factorjoin"},
		{"distinct-rbx", "SELECT COUNT(DISTINCT fact.val) FROM fact", true, "rbx"},
		{"groupby-rbx", "SELECT COUNT(*) FROM fact GROUP BY fact.flag", true, "rbx"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kind := EstimateRows
			if tc.ndv {
				kind = EstimateDistinct
			}
			d, err := sys.Estimate(tc.sql, EstimateOpts{Kind: kind, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			if d.Value <= 0 {
				t.Errorf("estimate = %g, want > 0", d.Value)
			}
			if d.Source != tc.source {
				t.Errorf("source = %q, want %q (trace: %v)", d.Source, tc.source, d.Trace.Spans())
			}
			if d.Fallback {
				t.Errorf("healthy models must not fall back (trace: %v)", d.Trace.Spans())
			}
			if d.Trace.Len() == 0 {
				t.Error("trace recorded no spans")
			}
		})
	}
}

// TestFaultTraceRecordsGuardOutcome injects a BN panic and checks that the
// Detail API degrades to the traditional estimator while the trace records
// both the guard's verdict and the fallback that answered.
func TestFaultTraceRecordsGuardOutcome(t *testing.T) {
	sys := openToy(t)
	inj := faultinject.New(7)
	inj.Arm(faultinject.Rule{Kind: faultinject.Panic, KeyPrefix: "bn:"})
	sys.SetFaultHook(inj)
	defer sys.SetFaultHook(nil)

	d, err := sys.Estimate("SELECT COUNT(*) FROM fact WHERE val < 50", EstimateOpts{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fallback {
		t.Errorf("fault-injected estimate must be flagged as fallback (trace: %v)", d.Trace.Spans())
	}
	if d.Source != "sketch" {
		t.Errorf("source = %q, want %q", d.Source, "sketch")
	}
	var panicked, fellBack bool
	for _, s := range d.Trace.Spans() {
		if s.Outcome == obs.OutcomePanic && s.Key == "bn:fact" {
			panicked = true
		}
		if s.Fallback && s.Source == "sketch" && s.Err != "" {
			fellBack = true
		}
	}
	if !panicked {
		t.Errorf("no span with outcome %q for bn:fact (trace: %v)", obs.OutcomePanic, d.Trace.Spans())
	}
	if !fellBack {
		t.Errorf("no fallback span carrying the failure cause (trace: %v)", d.Trace.Spans())
	}
	found := false
	for _, o := range d.Trace.Outcomes() {
		if o == obs.OutcomePanic {
			found = true
		}
	}
	if !found {
		t.Errorf("Outcomes() = %v, want to include %q", d.Trace.Outcomes(), obs.OutcomePanic)
	}
}

// TestExplainAnnotatesPlanNodes checks that EXPLAIN reports per-node
// estimates with the estimator source that produced each one.
func TestExplainAnnotatesPlanNodes(t *testing.T) {
	sys := openToy(t)
	res, err := sys.Explain("SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat <= 3")
	if err != nil {
		t.Fatal(err)
	}
	var scans, joins int
	for _, n := range res.Nodes {
		switch n.Kind {
		case "scan":
			scans++
			if n.Source != "bn" {
				t.Errorf("scan %v source = %q, want bn", n.Tables, n.Source)
			}
			if n.Strategy == "" {
				t.Errorf("scan %v has no strategy", n.Tables)
			}
		case "join":
			joins++
			if n.Source != "factorjoin" {
				t.Errorf("join %v source = %q, want factorjoin", n.Tables, n.Source)
			}
			if n.EstRows <= 0 {
				t.Errorf("join %v est_rows = %g, want > 0", n.Tables, n.EstRows)
			}
		}
	}
	if scans != 2 || joins != 1 {
		t.Errorf("got %d scans and %d joins, want 2 and 1 (nodes: %+v)", scans, joins, res.Nodes)
	}
	if res.EstFinalRows <= 0 {
		t.Errorf("est_final_rows = %g, want > 0", res.EstFinalRows)
	}
	if len(res.Trace) == 0 {
		t.Error("explain trace is empty")
	}
	out := res.String()
	if !strings.Contains(out, "source=bn") || !strings.Contains(out, "source=factorjoin") {
		t.Errorf("rendered plan missing sources:\n%s", out)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Errorf("explain result not serializable: %v", err)
	}
}

// TestExplainAggregateNode checks NDV presizing shows up as an annotated
// aggregate node.
func TestExplainAggregateNode(t *testing.T) {
	sys := openToy(t)
	res, err := sys.Explain("SELECT COUNT(*) FROM fact GROUP BY fact.flag")
	if err != nil {
		t.Fatal(err)
	}
	var agg *string
	for _, n := range res.Nodes {
		if n.Kind == "aggregate" {
			s := n.Source
			agg = &s
			if n.EstRows <= 0 {
				t.Errorf("aggregate est_rows = %g, want > 0", n.EstRows)
			}
		}
	}
	if agg == nil {
		t.Fatalf("no aggregate node (nodes: %+v)", res.Nodes)
	}
	if *agg != "rbx" {
		t.Errorf("aggregate source = %q, want rbx", *agg)
	}
}

// TestMetricsSnapshot checks the Metrics surface: counters move, sources
// are attributed, the snapshot serializes, and the deprecated Health view
// stays consistent with it.
func TestMetricsSnapshot(t *testing.T) {
	sys := openToy(t)
	if _, err := sys.EstimateCount("SELECT COUNT(*) FROM fact WHERE val < 50"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id"); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	if m.Estimator.Calls == 0 {
		t.Error("estimator calls not counted")
	}
	if m.Estimator.ModelCalls == 0 {
		t.Error("model calls not counted")
	}
	if len(m.Estimator.Sources) == 0 {
		t.Error("no per-source attribution")
	}
	if m.Estimator.Sources["bn"] == 0 {
		t.Errorf("bn not attributed (sources: %v)", m.Estimator.Sources)
	}
	if m.Estimator.ModelLatencyNs.Count == 0 {
		t.Error("model latency histogram empty")
	}
	if m.Engine.Queries == 0 {
		t.Error("engine query volume not counted")
	}
	if m.Engine.PlanQError.Count == 0 {
		t.Error("plan q-error histogram empty")
	}
	if m.Loader.LastSuccess.IsZero() {
		t.Error("loader never refreshed")
	}
	if m.Loader.Installed == 0 {
		t.Error("loader reports no installed models")
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(m.String()), &decoded); err != nil {
		t.Fatalf("Metrics.String() is not JSON: %v", err)
	}
	for _, key := range []string{"estimator", "guard", "registry", "loader", "engine"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("serialized metrics missing %q", key)
		}
	}
	if _, ok := decoded["caches"]; !ok {
		t.Error("serialized metrics missing \"caches\"")
	}
	// The derived caches surface uniformly; a fresh system has at least the
	// join-vector and plan caches registered.
	for _, name := range []string{"joinvec", "plan"} {
		if _, ok := m.Caches[name]; !ok {
			t.Errorf("Metrics.Caches missing %q (have %v)", name, m.Caches)
		}
	}
}

// TestModelAdminView checks the documented admin surface drives the same
// state as the legacy registry methods.
func TestModelAdminView(t *testing.T) {
	sys := openToy(t)
	admin := sys.Infer.Admin()
	st := admin.State("bn:fact")
	if st.Disabled {
		t.Error("bn:fact disabled on a fresh system")
	}
	if !admin.Usable("bn:fact") {
		t.Error("bn:fact not usable on a fresh system")
	}
	admin.Disable("bn:fact")
	if !admin.State("bn:fact").Disabled {
		t.Error("Disable did not take")
	}
	if admin.Usable("bn:fact") {
		t.Error("disabled key still usable")
	}
	d, err := sys.Estimate("SELECT COUNT(*) FROM fact WHERE val < 50", EstimateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fallback || d.Source != "sketch" {
		t.Errorf("disabled model should fall back to sketch, got source=%q fallback=%v", d.Source, d.Fallback)
	}
	admin.Enable("bn:fact")
	if admin.State("bn:fact").Disabled {
		t.Error("Enable did not take")
	}
	d, err = sys.Estimate("SELECT COUNT(*) FROM fact WHERE val < 50", EstimateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Source != "bn" {
		t.Errorf("re-enabled model should answer, got source=%q", d.Source)
	}
}
