package bytecard

import (
	"fmt"
	"sync"
	"testing"

	"bytecard/internal/datagen"
	"bytecard/internal/engine"
)

// Benchmarks for the morsel-driven parallel executor: the same query run
// at 1 worker and at 4, over the JOB-light-style (imdb) and
// STATS-CEB-style (stats) generators. On a multi-core machine the
// 4-worker rows should show the speedup on aggregation-heavy shapes;
// elapsed wall time is the comparison metric:
//
//	go test -bench=BenchmarkParallel -benchtime=5x
var (
	parBenchMu    sync.Mutex
	parBenchCache = map[string]*datagen.Dataset{}
)

func parBenchDataset(b *testing.B, name string) *datagen.Dataset {
	b.Helper()
	parBenchMu.Lock()
	defer parBenchMu.Unlock()
	if ds, ok := parBenchCache[name]; ok {
		return ds
	}
	ds, err := datagen.ByName(name, datagen.Config{Scale: 0.5, Seed: 71})
	if err != nil {
		b.Fatal(err)
	}
	parBenchCache[name] = ds
	return ds
}

func benchmarkParallelQuery(b *testing.B, dataset, sql string, workers int) {
	ds := parBenchDataset(b, dataset)
	e := engine.New(ds.DB, ds.Schema, engine.HeuristicEstimator{})
	e.Parallelism = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(sql)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Metrics.IO.BlocksRead()), "blocks")
			b.ReportMetric(float64(res.Metrics.ParallelWorkers), "workers")
		}
	}
}

// Aggregation-heavy shapes: a grouped scan-aggregate and a join feeding a
// grouped aggregate with COUNT DISTINCT.
var parallelBenchQueries = map[string]string{
	"imdb_scan_agg":  "SELECT ci.role_id, COUNT(*), SUM(ci.person_id), MIN(ci.person_id), MAX(ci.person_id) FROM cast_info ci GROUP BY ci.role_id",
	"imdb_join_agg":  "SELECT t.kind_id, COUNT(*), COUNT(DISTINCT ci.role_id) FROM title t, cast_info ci WHERE ci.movie_id = t.id GROUP BY t.kind_id",
	"stats_scan_agg": "SELECT v.vote_type, COUNT(*), SUM(v.creation_year) FROM votes v GROUP BY v.vote_type",
	"stats_join_agg": "SELECT u.creation_year, COUNT(*), COUNT(DISTINCT p.post_type) FROM posts p, users u WHERE p.owner_user_id = u.id GROUP BY u.creation_year",
}

func benchmarkParallel(b *testing.B, key string, workers int) {
	dataset := "imdb"
	if key[:5] == "stats" {
		dataset = "stats"
	}
	benchmarkParallelQuery(b, dataset, parallelBenchQueries[key], workers)
}

func BenchmarkParallel_IMDBScanAgg_1Worker(b *testing.B)  { benchmarkParallel(b, "imdb_scan_agg", 1) }
func BenchmarkParallel_IMDBScanAgg_4Workers(b *testing.B) { benchmarkParallel(b, "imdb_scan_agg", 4) }
func BenchmarkParallel_IMDBJoinAgg_1Worker(b *testing.B)  { benchmarkParallel(b, "imdb_join_agg", 1) }
func BenchmarkParallel_IMDBJoinAgg_4Workers(b *testing.B) { benchmarkParallel(b, "imdb_join_agg", 4) }
func BenchmarkParallel_STATSScanAgg_1Worker(b *testing.B) { benchmarkParallel(b, "stats_scan_agg", 1) }
func BenchmarkParallel_STATSScanAgg_4Workers(b *testing.B) {
	benchmarkParallel(b, "stats_scan_agg", 4)
}
func BenchmarkParallel_STATSJoinAgg_1Worker(b *testing.B) { benchmarkParallel(b, "stats_join_agg", 1) }
func BenchmarkParallel_STATSJoinAgg_4Workers(b *testing.B) {
	benchmarkParallel(b, "stats_join_agg", 4)
}

var _ = fmt.Sprint // keep fmt if metrics reporting changes
