package bytecard

import (
	"sync"
	"testing"

	"bytecard/internal/engine"
	"bytecard/internal/sqlparse"
)

// Estimation fast-path system tests: batched parallel planning must be
// byte-identical to sequential planning with the real ByteCard estimator,
// and one shared estimator must serve many concurrent planners without
// races or cross-talk through the pooled inference scratch.

var (
	fastpathMu      sync.Mutex
	fastpathSystems = map[string]*System{}
)

// fastpathSystem opens (once per dataset) a trained system with the
// parallel planner enabled.
func fastpathSystem(t *testing.T, dataset string) *System {
	t.Helper()
	fastpathMu.Lock()
	defer fastpathMu.Unlock()
	if sys, ok := fastpathSystems[dataset]; ok {
		return sys
	}
	sys, err := Open(Options{Dataset: dataset, Scale: 0.1, Seed: 5, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	fastpathSystems[dataset] = sys
	return sys
}

var fastpathQueries = map[string][]string{
	"imdb": {
		"SELECT COUNT(*) FROM title t, cast_info ci, movie_keyword mk WHERE ci.movie_id = t.id AND mk.movie_id = t.id AND t.production_year >= 1990",
		"SELECT COUNT(*) FROM title t, cast_info ci, movie_keyword mk, movie_info mi, movie_companies mc, movie_info_idx mii " +
			"WHERE ci.movie_id = t.id AND mk.movie_id = t.id AND mi.movie_id = t.id AND mc.movie_id = t.id AND mii.movie_id = t.id AND ci.role_id <= 5",
	},
	"stats": {
		"SELECT COUNT(*) FROM posts p, users u WHERE p.owner_user_id = u.id AND u.creation_year >= 2010",
		"SELECT COUNT(*) FROM posts p, users u, votes v, comments c WHERE p.owner_user_id = u.id AND v.post_id = p.id AND c.post_id = p.id AND p.post_type = 1",
	},
}

// noBatchEstimator hides EstimateJoinBatch, forcing sequential planning.
type noBatchEstimator struct{ engine.CardEstimator }

// TestBatchedPlanningParityRealEstimator plans each query twice through the
// same ByteCard estimator — once batched (the default: core.Estimator
// implements BatchCardEstimator) and once with the batch interface hidden —
// and requires byte-identical JoinOrder, JoinEstRows, and EstFinalRows on
// the imdb and stats generators.
func TestBatchedPlanningParityRealEstimator(t *testing.T) {
	for dataset, queries := range fastpathQueries {
		sys := fastpathSystem(t, dataset)
		for _, sql := range queries {
			stmt, err := sqlparse.Parse(sql)
			if err != nil {
				t.Fatal(err)
			}
			q, err := sys.Engine.Analyze(stmt)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := sys.Engine.Plan(q)
			if err != nil {
				t.Fatal(err)
			}
			sequential, err := sys.Engine.PlanWith(q, noBatchEstimator{sys.Estimator})
			if err != nil {
				t.Fatal(err)
			}
			if len(batched.JoinOrder) != len(sequential.JoinOrder) {
				t.Fatalf("%s/%s: join order lengths differ", dataset, sql)
			}
			for i := range batched.JoinOrder {
				if batched.JoinOrder[i] != sequential.JoinOrder[i] {
					t.Fatalf("%s/%s: JoinOrder %v vs %v", dataset, sql, batched.JoinOrder, sequential.JoinOrder)
				}
			}
			for i := range batched.JoinEstRows {
				if batched.JoinEstRows[i] != sequential.JoinEstRows[i] {
					t.Fatalf("%s/%s: JoinEstRows[%d] %v vs %v", dataset, sql, i, batched.JoinEstRows[i], sequential.JoinEstRows[i])
				}
			}
			if batched.EstFinalRows != sequential.EstFinalRows {
				t.Fatalf("%s/%s: EstFinalRows %v vs %v", dataset, sql, batched.EstFinalRows, sequential.EstFinalRows)
			}
		}
	}
}

// TestConcurrentPlanningSharedEstimator runs Explain and EstimateCount from
// many goroutines through one shared core.Estimator (pooled BN scratch,
// shared vector cache, batched DP) under -race, asserting every concurrent
// answer equals the serially computed reference.
func TestConcurrentPlanningSharedEstimator(t *testing.T) {
	sys := fastpathSystem(t, "imdb")
	queries := fastpathQueries["imdb"]
	plan := func(sql string) (*engine.Plan, error) {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, err
		}
		q, err := sys.Engine.Analyze(stmt)
		if err != nil {
			return nil, err
		}
		return sys.Engine.Plan(q)
	}
	type ref struct {
		order []int
		rows  []float64
		est   float64
		count float64
	}
	refs := make([]ref, len(queries))
	for i, sql := range queries {
		p, err := plan(sql)
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := sys.EstimateCount(sql)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref{order: p.JoinOrder, rows: p.JoinEstRows, est: p.EstFinalRows, count: cnt}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 8; it++ {
				i := (g + it) % len(queries)
				p, err := plan(queries[i])
				if err != nil {
					fail(err)
					return
				}
				if p.EstFinalRows != refs[i].est {
					t.Errorf("goroutine %d: EstFinalRows %v, want %v", g, p.EstFinalRows, refs[i].est)
					return
				}
				for k := range refs[i].order {
					if p.JoinOrder[k] != refs[i].order[k] {
						t.Errorf("goroutine %d: JoinOrder %v, want %v", g, p.JoinOrder, refs[i].order)
						return
					}
				}
				for k := range refs[i].rows {
					if p.JoinEstRows[k] != refs[i].rows[k] {
						t.Errorf("goroutine %d: JoinEstRows %v, want %v", g, p.JoinEstRows, refs[i].rows)
						return
					}
				}
				// Explain plans under a traced batch-capable view of the
				// same shared estimator; its summary must agree too.
				ex, err := sys.Explain(queries[i])
				if err != nil {
					fail(err)
					return
				}
				if ex.EstFinalRows != refs[i].est {
					t.Errorf("goroutine %d: Explain EstFinalRows %v, want %v", g, ex.EstFinalRows, refs[i].est)
					return
				}
				cnt, err := sys.EstimateCount(queries[i])
				if err != nil {
					fail(err)
					return
				}
				if cnt != refs[i].count {
					t.Errorf("goroutine %d: EstimateCount %v, want %v", g, cnt, refs[i].count)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}
