package bytecard

import (
	"reflect"
	"testing"
	"time"

	"bytecard/internal/engine"
	"bytecard/internal/rbx"
	"bytecard/internal/sqlparse"
)

// Plan-cache system tests: cached plans must be byte-identical to the
// fresh join-order DP with the real ByteCard estimator across the
// JOB-Hybrid and STATS-Hybrid workloads, cached decisions must execute
// correctly with each sibling query's own constants, and model churn
// (retrain + refresh) must invalidate affected templates.

// analyzeFresh parses and analyzes sql into a fresh Query.
func analyzeFresh(t *testing.T, e *engine.Engine, sql string) *engine.Query {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	q, err := e.Analyze(stmt)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return q
}

// samePlan compares every decision field of two plans.
func samePlan(a, b *engine.Plan) bool {
	if !reflect.DeepEqual(a.JoinOrder, b.JoinOrder) ||
		!reflect.DeepEqual(a.JoinEstRows, b.JoinEstRows) ||
		a.EstFinalRows != b.EstFinalRows || a.AggCapacity != b.AggCapacity ||
		len(a.Scans) != len(b.Scans) {
		return false
	}
	for i := range a.Scans {
		if a.Scans[i].Strategy != b.Scans[i].Strategy ||
			a.Scans[i].EstRows != b.Scans[i].EstRows ||
			!reflect.DeepEqual(a.Scans[i].ColOrder, b.Scans[i].ColOrder) {
			return false
		}
	}
	return true
}

// TestPlanCacheParityWorkloads is the PR's parity gate at system level:
// for every workload query, the fresh cache-free DP, the cold-miss plan,
// and the warm-hit replay must be byte-identical under the real ByteCard
// estimator.
func TestPlanCacheParityWorkloads(t *testing.T) {
	for _, dataset := range []string{"imdb", "stats"} {
		sys := fastpathSystem(t, dataset)
		w, err := sys.Workload(21)
		if err != nil {
			t.Fatal(err)
		}
		queries := w.Queries
		if len(queries) > 40 {
			queries = queries[:40]
		}
		for _, wq := range queries {
			sys.Engine.PlanCache.Flush()
			// Ground truth: the same engine and estimator, cache bypassed.
			fresh, err := sys.Engine.PlanWith(analyzeFresh(t, sys.Engine, wq.SQL), sys.Engine.Est)
			if err != nil {
				t.Fatalf("%s/%s: %v", dataset, wq.SQL, err)
			}
			cold, err := sys.Engine.Plan(analyzeFresh(t, sys.Engine, wq.SQL))
			if err != nil {
				t.Fatalf("%s/%s: %v", dataset, wq.SQL, err)
			}
			warm, err := sys.Engine.Plan(analyzeFresh(t, sys.Engine, wq.SQL))
			if err != nil {
				t.Fatalf("%s/%s: %v", dataset, wq.SQL, err)
			}
			if !samePlan(fresh, cold) {
				t.Errorf("%s/%s: cold-miss plan diverges from cache-free plan", dataset, wq.SQL)
			}
			if !samePlan(fresh, warm) {
				t.Errorf("%s/%s: warm-hit plan diverges from cache-free plan", dataset, wq.SQL)
			}
		}
	}
}

// TestPlanCacheExecutionResults runs workload queries through a
// plan-cached engine twice — the second pass executing replayed template
// decisions — and requires results identical to a cache-free view of the
// same engine. No flushes between queries: templates accumulate and
// cross-query reuse (including sibling rebinding) is exercised for real.
func TestPlanCacheExecutionResults(t *testing.T) {
	sys := fastpathSystem(t, "imdb")
	sys.Engine.PlanCache.Flush()
	cacheOff := *sys.Engine
	cacheOff.PlanCache = nil
	w, err := sys.Workload(33)
	if err != nil {
		t.Fatal(err)
	}
	queries := w.Queries
	if len(queries) > 15 {
		queries = queries[:15]
	}
	for pass := 0; pass < 2; pass++ {
		for _, wq := range queries {
			want, err := cacheOff.Run(wq.SQL)
			if err != nil {
				t.Fatalf("cache-off %s: %v", wq.SQL, err)
			}
			got, err := sys.Engine.Run(wq.SQL)
			if err != nil {
				t.Fatalf("pass %d %s: %v", pass, wq.SQL, err)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Errorf("pass %d %s: cached execution returned different rows", pass, wq.SQL)
			}
		}
	}
	if s := sys.Engine.PlanCache.Stats(); s.Hits == 0 {
		t.Error("execution sweep never hit the plan cache")
	}
}

// TestModelChurnInvalidatesPlanCache checks the registry wiring end to
// end: a retrain shipped through RefreshModels drops exactly the cached
// templates that touch the retrained table, and the admin flush empties
// everything.
func TestModelChurnInvalidatesPlanCache(t *testing.T) {
	sys, err := Open(Options{
		Dataset: "toy", Scale: 2, Seed: 11,
		RBX: rbx.TrainConfig{Columns: 80, Epochs: 4, MaxPop: 10000, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	factOnly := "SELECT COUNT(*) FROM fact WHERE val < 50"
	joined := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat <= 3"
	for _, sql := range []string{factOnly, joined} {
		if _, err := sys.Run(sql); err != nil {
			t.Fatal(err)
		}
	}
	if n := sys.Engine.PlanCache.Len(); n != 2 {
		t.Fatalf("plan cache holds %d templates, want 2", n)
	}

	// Retrain dim with a future timestamp so the refresh installs it.
	if _, err := sys.Forge.TrainTableAt("dim", time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RefreshModels(); err != nil {
		t.Fatal(err)
	}
	if n := sys.Engine.PlanCache.Len(); n != 1 {
		t.Errorf("after retraining dim the plan cache holds %d templates, want 1 (fact-only survivor)", n)
	}
	if s := sys.Engine.PlanCache.Stats(); s.Invalidations == 0 {
		t.Error("retrain recorded no plan-cache invalidations")
	}
	// The fact-only template must still hit; the joined template replans.
	hitsBefore := sys.Engine.PlanCache.Stats().Hits
	if _, err := sys.Run(factOnly); err != nil {
		t.Fatal(err)
	}
	if s := sys.Engine.PlanCache.Stats(); s.Hits != hitsBefore+1 {
		t.Errorf("surviving template did not hit (hits %d -> %d)", hitsBefore, s.Hits)
	}
	if _, err := sys.Run(joined); err != nil {
		t.Fatal(err)
	}

	// Disabling a model flushes everything (estimates may embed it).
	sys.Infer.Admin().Disable("bn:fact")
	if n := sys.Engine.PlanCache.Len(); n != 0 {
		t.Errorf("disable left %d cached templates", n)
	}
	sys.Infer.Admin().Enable("bn:fact")

	// Admin stats/flush route through the same registry.
	for _, sql := range []string{factOnly, joined} {
		if _, err := sys.Run(sql); err != nil {
			t.Fatal(err)
		}
	}
	stats := sys.Infer.Admin().CacheStats()
	if stats["plan"].Entries != 2 {
		t.Errorf("admin stats report %d plan entries, want 2", stats["plan"].Entries)
	}
	if _, ok := stats["joinvec"]; !ok {
		t.Error("admin stats missing the joinvec cache")
	}
	if n := sys.Infer.Admin().FlushCaches(); n == 0 {
		t.Error("admin flush dropped nothing")
	}
	if n := sys.Engine.PlanCache.Len(); n != 0 {
		t.Errorf("admin flush left %d cached templates", n)
	}
}
