// Package bytecard is the public API of this repository: a reproduction of
// "ByteCard: Enhancing ByteDance's Data Warehouse with Learned Cardinality
// Estimation" (SIGMOD 2024). It assembles the full system — a columnar
// analytical engine, the learned cardinality models (tree Bayesian
// networks, FactorJoin, the RBX NDV estimator), and the ByteCard framework
// around them (Inference Engine, ModelForge training service, Model
// Loader, Model Monitor, Model Preprocessor) — behind one System handle.
//
// Quick start:
//
//	sys, err := bytecard.Open(bytecard.Options{Dataset: "imdb", Scale: 0.02})
//	res, err := sys.Run("SELECT COUNT(*) FROM title WHERE production_year > 2000")
//	est, err := sys.EstimateCount("SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id")
package bytecard

import (
	"encoding/json"
	"expvar"
	"fmt"
	"os"
	"strconv"
	"sync"

	"bytecard/internal/cardinal"
	"bytecard/internal/core"
	"bytecard/internal/datagen"
	"bytecard/internal/engine"
	"bytecard/internal/loader"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/monitor"
	"bytecard/internal/obs"
	"bytecard/internal/rbx"
	"bytecard/internal/residual"
	"bytecard/internal/sample"
	"bytecard/internal/workload"
)

// Options configure Open.
type Options struct {
	// Dataset selects a built-in synthetic dataset: "imdb", "stats",
	// "aeolus", "timeseries", or "toy".
	Dataset string
	// Scale multiplies base row counts (default 0.05).
	Scale float64
	// Seed drives all generators and training (default 1).
	Seed int64
	// StoreDir persists model artifacts between runs; empty uses a
	// temporary directory.
	StoreDir string
	// KeepGenerations bounds how many artifact generations the store
	// retains per model key for corruption fallback (default 3).
	KeepGenerations int
	// SkipTraining opens the system without training models: estimates
	// fall back to the traditional sketch estimator until models are
	// trained and loaded (RefreshModels).
	SkipTraining bool
	// BucketCount sizes FactorJoin's join buckets (default 200, matching
	// the paper's equi-height configuration).
	BucketCount int
	// SampleRows caps per-table training samples (default 8000).
	SampleRows int
	// RBX overrides the NDV trainer configuration.
	RBX rbx.TrainConfig
	// Estimator selects the optimizer's estimator: "bytecard" (default),
	// "sketch", "sample", or "heuristic".
	Estimator string
	// Parallelism is the executor's morsel-driven worker count (scans,
	// hash-join probes, aggregation). Zero defers to the
	// BYTECARD_PARALLELISM environment variable, then runtime.GOMAXPROCS;
	// 1 forces the sequential executor.
	Parallelism int
	// Guard tunes the inference guard around every model call (panic
	// recovery, latency budget, estimate sanitization). The zero value
	// guards with no latency budget.
	Guard core.GuardConfig
	// Breaker tunes the per-model-key circuit breakers (zero values take
	// the defaults: 5 consecutive failures open, 30s cooldown).
	Breaker core.BreakerConfig
	// TrainWorkers bounds ModelForge's training worker pool (Chow-Liu MI
	// matrix, FactorJoin build). Zero defers to BYTECARD_TRAIN_WORKERS,
	// then runtime.GOMAXPROCS. Trained models are byte-identical for every
	// worker count.
	TrainWorkers int
	// PlanCacheBytes bounds the template-keyed plan cache's resident
	// bytes. Zero defers to BYTECARD_PLAN_CACHE_BYTES, then the engine
	// default (4 MiB); negative disables plan caching. The cache is
	// registered with the inference registry, so model retrains and
	// refreshes invalidate affected templates automatically.
	PlanCacheBytes int64
	// BatchThreshold is the minimum join-order DP rank size handed to the
	// batched estimator path as one batch. Zero defers to
	// BYTECARD_BATCH_THRESHOLD, then the engine default (2); negative
	// disables batching.
	BatchThreshold int
	// Pushdown controls the pushdown scan contract (zone-map block
	// skipping, predicate/projection/limit pushdown, late
	// materialization). Zero defers to the BYTECARD_PUSHDOWN environment
	// variable, then the engine default (on); negative disables pushdown,
	// restoring the pre-contract scan path byte for byte.
	Pushdown int
	// ResidualCorrection enables the online residual corrector: executed
	// queries feed (estimate, truth) pairs into a per-template
	// multiplicative correction applied on top of BN/FactorJoin estimates
	// (see internal/residual), with Monitor-triggered refits on q-error
	// drift. False defers to the BYTECARD_RESIDUAL environment variable
	// ("1"/"true"/"on"). Off by default — and with it off, every estimate
	// is byte-identical to a build without the corrector.
	ResidualCorrection bool
	// Residual tunes the corrector (zero values take the defaults); only
	// consulted when ResidualCorrection is on.
	Residual residual.Config
}

func (o *Options) fill() {
	if o.Dataset == "" {
		o.Dataset = "toy"
	}
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BucketCount <= 0 {
		o.BucketCount = 200
	}
	if o.SampleRows <= 0 {
		o.SampleRows = 8000
	}
	if o.RBX.Columns == 0 {
		o.RBX = rbx.TrainConfig{Columns: 300, Epochs: 10, MaxPop: 50000, Seed: o.Seed + 9}
	}
	if o.Estimator == "" {
		o.Estimator = "bytecard"
	}
	if !o.ResidualCorrection && envResidual() {
		o.ResidualCorrection = true
	}
}

// envResidual reads BYTECARD_RESIDUAL once (the deployment flag for the
// online residual corrector).
var envResidual = sync.OnceValue(func() bool {
	switch os.Getenv("BYTECARD_RESIDUAL") {
	case "1", "true", "on":
		return true
	}
	return false
})

// System is a fully wired ByteCard deployment over one dataset.
type System struct {
	Options Options
	// Dataset holds the data and catalog.
	Dataset *datagen.Dataset
	// Engine executes SQL with the selected estimator driving the
	// optimizer.
	Engine *engine.Engine
	// Estimator is the ByteCard estimator (BN + FactorJoin + RBX with
	// sketch fallback).
	Estimator *core.Estimator
	// Sketch and Sample are the traditional baselines.
	Sketch *cardinal.SketchEstimator
	Sample *cardinal.SampleEstimator
	// Infer is the model registry.
	Infer *core.InferenceEngine
	// Forge is the training service.
	Forge *modelforge.Service
	// Store holds serialized model artifacts.
	Store *modelstore.Store
	// Loader ships artifacts from Store into Infer.
	Loader *loader.Loader
	// Monitor probes model quality.
	Monitor *monitor.Monitor
	// Featurizer builds feature vectors for the estimation API.
	Featurizer *core.Featurizer
	// Residual is the online residual corrector (nil unless
	// Options.ResidualCorrection / BYTECARD_RESIDUAL enabled it).
	Residual *residual.Corrector
	// TrainReport records the initial training run (nil with
	// SkipTraining).
	TrainReport *modelforge.Report
}

// Open generates the dataset, trains and loads the models (unless
// SkipTraining), and wires every component of the framework.
func Open(opts Options) (*System, error) {
	opts.fill()
	ds, err := datagen.ByName(opts.Dataset, datagen.Config{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	return OpenDataset(ds, opts)
}

// OpenDataset wires the system over a caller-provided dataset.
func OpenDataset(ds *datagen.Dataset, opts Options) (*System, error) {
	opts.fill()
	sys := &System{Options: opts, Dataset: ds}
	dir := opts.StoreDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "bytecard-store-*")
		if err != nil {
			return nil, err
		}
	}
	var err error
	sys.Store, err = modelstore.Open(dir, modelstore.WithKeepGenerations(opts.KeepGenerations))
	if err != nil {
		return nil, err
	}
	sys.Sketch = cardinal.NewSketchEstimator(ds.DB, cardinal.DefaultHistogramBuckets)
	sys.Sample = cardinal.NewSampleEstimator(ds.DB, cardinal.DefaultSampleRows, opts.Seed+2)
	sys.Forge = modelforge.New(ds.Name, ds.DB, ds.Schema, sys.Store, modelforge.Config{
		SampleRows:   opts.SampleRows,
		BucketCount:  opts.BucketCount,
		RBX:          opts.RBX,
		Seed:         opts.Seed + 3,
		TrainWorkers: opts.TrainWorkers,
	})
	sys.Infer = core.NewInferenceEngine(core.Options{Breaker: opts.Breaker})
	sys.Loader = loader.New(sys.Store, sys.Infer)
	sys.Estimator = core.NewEstimator(sys.Infer, sys.Sketch)
	sys.Estimator.Guard = core.NewGuard(opts.Guard)
	if opts.ResidualCorrection {
		sys.Residual = residual.New(opts.Residual, obs.NewResidualMetrics())
		sys.Estimator.Residual = sys.Residual
		// Registered with the inference registry so model churn (retrain,
		// refresh, enable/disable) drops the corrections learned against
		// the replaced models instead of letting them ride on fresh ones.
		sys.Infer.RegisterCache("residual", sys.Residual)
	}
	sys.Featurizer = core.NewFeaturizer(ds.DB, ds.Schema)

	if !opts.SkipTraining {
		sys.TrainReport, err = sys.Forge.TrainAll()
		if err != nil {
			return nil, err
		}
		if _, err := sys.Loader.RefreshOnce(); err != nil {
			return nil, err
		}
	}
	loader.LoadSamples(ds.DB, sys.Estimator, opts.SampleRows, opts.Seed+4)

	est, err := sys.estimatorByName(opts.Estimator)
	if err != nil {
		return nil, err
	}
	sys.Engine = engine.New(ds.DB, ds.Schema, est)
	sys.Engine.Parallelism = opts.Parallelism
	sys.Engine.BatchThreshold = opts.BatchThreshold
	sys.Engine.Pushdown = opts.Pushdown
	sys.Engine.Obs = obs.NewEngineMetrics()
	if b := planCacheBudget(opts.PlanCacheBytes); b >= 0 {
		pc := engine.NewPlanCache(b)
		sys.Engine.PlanCache = pc
		// Registered with the inference registry so model churn (retrain,
		// refresh, enable/disable) invalidates cached templates.
		sys.Infer.RegisterCache("plan", pc)
	}
	if sys.Residual != nil && opts.Estimator == "bytecard" {
		// Close the loop: every executed statement's (template, estimate,
		// truth) tuple feeds the corrector. Only wired when the engine
		// plans with the ByteCard estimator — truth paired with another
		// estimator's numbers would teach the corrector the wrong
		// residuals.
		corr := sys.Residual
		sys.Engine.OnTruth = func(key string, tables []string, est float64, actual int64) {
			corr.Observe(key, tables, est, float64(actual))
		}
	}
	sys.Monitor = &monitor.Monitor{
		Exec:     sys.Engine,
		Est:      sys.Estimator,
		Feat:     sys.Featurizer,
		Infer:    sys.Infer,
		Residual: sys.Residual,
		Seed:     opts.Seed + 5,
		RetrainTable: func(table string) error {
			_, err := sys.Forge.TrainTable(table)
			return err
		},
		FineTuneNDV: func(column string, profiles []sample.Profile, truths []float64) error {
			return sys.Forge.FineTuneRBX(column, profiles, truths, rbx.FineTuneConfig{})
		},
	}
	return sys, nil
}

// envPlanCacheBytes reads BYTECARD_PLAN_CACHE_BYTES once (negative
// disables plan caching system-wide).
var envPlanCacheBytes = sync.OnceValue(func() int64 {
	if s := os.Getenv("BYTECARD_PLAN_CACHE_BYTES"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v != 0 {
			return v
		}
	}
	return 0
})

// planCacheBudget resolves the plan-cache byte budget: the option wins,
// then the environment, then the engine default (returned as 0 — the
// NewPlanCache sentinel). Negative means disabled.
func planCacheBudget(opt int64) int64 {
	if opt != 0 {
		return opt
	}
	return envPlanCacheBytes()
}

func (s *System) estimatorByName(name string) (engine.CardEstimator, error) {
	switch name {
	case "bytecard":
		return s.Estimator, nil
	case "sketch":
		return s.Sketch, nil
	case "sample":
		return s.Sample, nil
	case "heuristic":
		return engine.HeuristicEstimator{}, nil
	default:
		return nil, fmt.Errorf("bytecard: unknown estimator %q", name)
	}
}

// Run executes a SQL query through the optimizer and executors.
func (s *System) Run(sql string) (*engine.Result, error) { return s.Engine.Run(sql) }

// RunTraced executes a SQL query and returns, alongside the result, the
// full trace of how it was planned and run: every estimation step the
// optimizer took (with guard outcomes and model sources) followed by the
// execution-phase spans — scan, join, and aggregation, each annotated with
// the morsel-driven worker count it ran with.
func (s *System) RunTraced(sql string) (*engine.Result, *obs.Trace, error) {
	tr := obs.NewTrace()
	res, err := s.Engine.RunTraced(sql, tr)
	if err != nil {
		return nil, tr, err
	}
	return res, tr, nil
}

// Explain parses and plans a query without executing it, returning the
// chosen plan annotated with each node's cardinality estimate, the
// estimator source that produced it (BN, FactorJoin, RBX, or the
// traditional fallback), and the full per-call estimation trace — guard
// outcomes, breaker verdicts, cache hits, and timings included.
func (s *System) Explain(sql string) (*engine.ExplainResult, error) {
	return s.Engine.Explain(sql)
}

// EstimateKind selects what Estimate estimates.
type EstimateKind int

// Estimation kinds.
const (
	// EstimateRows estimates the query's COUNT(*) cardinality (default).
	EstimateRows EstimateKind = iota
	// EstimateDistinct estimates the distinct-key count of a query with a
	// COUNT(DISTINCT …) aggregate or GROUP BY.
	EstimateDistinct
)

// EstimateOpts configure one Estimate call.
type EstimateOpts struct {
	// Kind selects rows (default) or distinct-key estimation.
	Kind EstimateKind
	// Trace attaches the full per-call estimation record — guard
	// outcomes, breaker verdicts, cache hits, timings — to the result.
	Trace bool
}

// EstimateResult is a cardinality estimate with provenance: what the
// number is, which model produced it, whether the traditional estimator
// had to step in, and (on request) the full trace of how estimation
// unfolded.
type EstimateResult struct {
	// Value is the estimated cardinality (rows or distinct groups).
	Value float64 `json:"value"`
	// Source names the estimator that produced Value: "bn", "factorjoin",
	// "rbx", or a fallback estimator name such as "sketch".
	Source string `json:"source"`
	// Fallback reports that a learned model failed (or was unavailable)
	// and the traditional estimator answered instead.
	Fallback bool `json:"fallback"`
	// Trace is the per-call record behind Value (nil unless requested via
	// EstimateOpts.Trace).
	Trace *obs.Trace `json:"-"`
}

// Estimate is the consolidated estimation entry point: one call shape for
// every estimate kind, with provenance always included and the detailed
// trace opt-in. Model failures degrade to the traditional estimator
// (flagged via Fallback and visible in the trace) rather than erroring;
// only unparsable or unanalyzable SQL — or a Distinct request without a
// distinct aggregate — returns an error.
func (s *System) Estimate(sql string, opts EstimateOpts) (EstimateResult, error) {
	fv, err := s.Featurizer.FeaturizeSQLQuery(sql)
	if err != nil {
		return EstimateResult{}, err
	}
	tr := obs.NewTrace()
	var v float64
	switch opts.Kind {
	case EstimateDistinct:
		v, err = s.Estimator.NDVWithTrace(fv, tr)
		if err != nil {
			return EstimateResult{}, err
		}
	default:
		v = s.Estimator.CountWithTrace(fv, tr)
	}
	r := EstimateResult{Value: v, Source: tr.Source(), Fallback: tr.Fallback()}
	if opts.Trace {
		r.Trace = tr
	}
	return r, nil
}

// EstimateCount returns ByteCard's COUNT cardinality estimate for a query
// without executing it — shorthand for Estimate(sql, EstimateOpts{}).
// Like the optimizer path, it degrades to the traditional estimator when
// models are missing or failing; use Estimate to see when that happened.
func (s *System) EstimateCount(sql string) (float64, error) {
	d, err := s.Estimate(sql, EstimateOpts{})
	if err != nil {
		return 0, err
	}
	return d.Value, nil
}

// EstimateNDV returns ByteCard's COUNT-DISTINCT estimate for a query
// containing a COUNT(DISTINCT …) aggregate or GROUP BY — shorthand for
// Estimate(sql, EstimateOpts{Kind: EstimateDistinct}).
func (s *System) EstimateNDV(sql string) (float64, error) {
	d, err := s.Estimate(sql, EstimateOpts{Kind: EstimateDistinct})
	if err != nil {
		return 0, err
	}
	return d.Value, nil
}

// TrueCount executes the query's COUNT(*) form for ground truth.
func (s *System) TrueCount(sql string) (float64, error) {
	return s.Engine.TrueCardinality(workload.CountForm(sql))
}

// RefreshModels ships newly trained artifacts into the inference engine.
func (s *System) RefreshModels() (int, error) { return s.Loader.RefreshOnce() }

// Metrics is the system-wide observability snapshot: estimator counters
// with latency and q-error histograms, guard interventions, the inference
// registry's degradation-ladder state, the Model Loader's refresh health,
// and query-engine volumes. It subsumes the older Health view and is
// fully serializable — String() renders JSON, so a Metrics value (or the
// ExpvarFunc below) plugs straight into expvar.
type Metrics struct {
	// Estimator digests the shared estimator metrics: calls, fallbacks,
	// per-source counts, join-vector cache hits/misses/evictions, model
	// latency, and observed q-errors.
	Estimator obs.EstimatorSnapshot `json:"estimator"`
	// Guard counts guard interventions by failure class.
	Guard core.GuardStats `json:"guard"`
	// Registry is the inference engine snapshot, including disabled keys
	// and circuit-breaker states.
	Registry core.Stats `json:"registry"`
	// Loader reports the model-refresh loop's state, including the backing
	// store's corruption/fallback health.
	Loader loader.HealthSnapshot `json:"loader"`
	// Store counts the model store's persistence activity: puts, gets, and
	// the corruption incidents it detected and absorbed.
	Store obs.StoreSnapshot `json:"store"`
	// Engine covers query volume, plan/exec latency, and the q-error of
	// final-plan estimates against executed truth.
	Engine obs.EngineSnapshot `json:"engine"`
	// Training digests ModelForge's per-stage training timings (BN
	// structure learning, parameter learning, FactorJoin build).
	Training obs.TrainSnapshot `json:"training"`
	// Caches snapshots every registered derived cache by name — "joinvec"
	// for the estimator's join-vector/subset cache, "plan" for the
	// template-keyed plan cache (absent when disabled), "residual" for the
	// online corrector's bucket table (absent when disabled) — with uniform
	// hit/miss/eviction/invalidation counters and resident byte/entry
	// gauges.
	Caches map[string]obs.CacheSnapshot `json:"caches"`
	// Residual digests the online residual corrector: corrections applied
	// vs skipped, truth tuples absorbed, drift refits, correction-factor
	// magnitudes, and pre- vs post-correction q-error (all zero when the
	// corrector is disabled).
	Residual obs.ResidualSnapshot `json:"residual"`
}

// String renders the snapshot as JSON, satisfying expvar.Var.
func (m Metrics) String() string {
	b, err := json.Marshal(m)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Metrics returns the system-wide observability snapshot.
func (s *System) Metrics() Metrics {
	var rm *obs.ResidualMetrics
	if s.Residual != nil {
		rm = s.Residual.Metrics()
	}
	return Metrics{
		Estimator: s.Estimator.Metrics.Snapshot(),
		Guard:     s.Estimator.Guard.Stats(),
		Registry:  s.Infer.Snapshot(),
		Loader:    s.Loader.Snapshot(),
		Store:     s.Store.Obs().Snapshot(),
		Engine:    s.Engine.Obs.Snapshot(),
		Training:  s.Forge.Obs().Snapshot(),
		Caches:    s.Infer.CacheStats(),
		Residual:  rm.Snapshot(),
	}
}

// ExpvarFunc adapts the system to expvar publishing:
//
//	expvar.Publish("bytecard", sys.ExpvarFunc())
//
// Publication is left to the caller because expvar names are global and
// panic on reuse.
func (s *System) ExpvarFunc() expvar.Func {
	return expvar.Func(func() any { return s.Metrics() })
}

// SetFaultHook installs (or, with nil, removes) a fault-injection hook on
// the estimator's guard — chaos testing only.
func (s *System) SetFaultHook(h core.FaultHook) { s.Estimator.Guard.SetHook(h) }

// CheckModels runs the Model Monitor over every single-table COUNT model.
func (s *System) CheckModels() ([]monitor.TableReport, error) { return s.Monitor.CheckAll() }

// Workload generates the dataset's hybrid evaluation workload.
func (s *System) Workload(seed int64) (workload.Workload, error) {
	return workload.ByName(s.Dataset, seed)
}
