// Package bytecard is the public API of this repository: a reproduction of
// "ByteCard: Enhancing ByteDance's Data Warehouse with Learned Cardinality
// Estimation" (SIGMOD 2024). It assembles the full system — a columnar
// analytical engine, the learned cardinality models (tree Bayesian
// networks, FactorJoin, the RBX NDV estimator), and the ByteCard framework
// around them (Inference Engine, ModelForge training service, Model
// Loader, Model Monitor, Model Preprocessor) — behind one System handle.
//
// Quick start:
//
//	sys, err := bytecard.Open(bytecard.Options{Dataset: "imdb", Scale: 0.02})
//	res, err := sys.Run("SELECT COUNT(*) FROM title WHERE production_year > 2000")
//	est, err := sys.EstimateCount("SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id")
package bytecard

import (
	"fmt"
	"os"

	"bytecard/internal/cardinal"
	"bytecard/internal/core"
	"bytecard/internal/datagen"
	"bytecard/internal/engine"
	"bytecard/internal/loader"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/monitor"
	"bytecard/internal/rbx"
	"bytecard/internal/sample"
	"bytecard/internal/workload"
)

// Options configure Open.
type Options struct {
	// Dataset selects a built-in synthetic dataset: "imdb", "stats",
	// "aeolus", or "toy".
	Dataset string
	// Scale multiplies base row counts (default 0.05).
	Scale float64
	// Seed drives all generators and training (default 1).
	Seed int64
	// StoreDir persists model artifacts between runs; empty uses a
	// temporary directory.
	StoreDir string
	// SkipTraining opens the system without training models: estimates
	// fall back to the traditional sketch estimator until models are
	// trained and loaded (RefreshModels).
	SkipTraining bool
	// BucketCount sizes FactorJoin's join buckets (default 200, matching
	// the paper's equi-height configuration).
	BucketCount int
	// SampleRows caps per-table training samples (default 8000).
	SampleRows int
	// RBX overrides the NDV trainer configuration.
	RBX rbx.TrainConfig
	// Estimator selects the optimizer's estimator: "bytecard" (default),
	// "sketch", "sample", or "heuristic".
	Estimator string
	// Guard tunes the inference guard around every model call (panic
	// recovery, latency budget, estimate sanitization). The zero value
	// guards with no latency budget.
	Guard core.GuardConfig
	// Breaker tunes the per-model-key circuit breakers (zero values take
	// the defaults: 5 consecutive failures open, 30s cooldown).
	Breaker core.BreakerConfig
}

func (o *Options) fill() {
	if o.Dataset == "" {
		o.Dataset = "toy"
	}
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BucketCount <= 0 {
		o.BucketCount = 200
	}
	if o.SampleRows <= 0 {
		o.SampleRows = 8000
	}
	if o.RBX.Columns == 0 {
		o.RBX = rbx.TrainConfig{Columns: 300, Epochs: 10, MaxPop: 50000, Seed: o.Seed + 9}
	}
	if o.Estimator == "" {
		o.Estimator = "bytecard"
	}
}

// System is a fully wired ByteCard deployment over one dataset.
type System struct {
	Options Options
	// Dataset holds the data and catalog.
	Dataset *datagen.Dataset
	// Engine executes SQL with the selected estimator driving the
	// optimizer.
	Engine *engine.Engine
	// Estimator is the ByteCard estimator (BN + FactorJoin + RBX with
	// sketch fallback).
	Estimator *core.Estimator
	// Sketch and Sample are the traditional baselines.
	Sketch *cardinal.SketchEstimator
	Sample *cardinal.SampleEstimator
	// Infer is the model registry.
	Infer *core.InferenceEngine
	// Forge is the training service.
	Forge *modelforge.Service
	// Store holds serialized model artifacts.
	Store *modelstore.Store
	// Loader ships artifacts from Store into Infer.
	Loader *loader.Loader
	// Monitor probes model quality.
	Monitor *monitor.Monitor
	// Featurizer builds feature vectors for the estimation API.
	Featurizer *core.Featurizer
	// TrainReport records the initial training run (nil with
	// SkipTraining).
	TrainReport *modelforge.Report
}

// Open generates the dataset, trains and loads the models (unless
// SkipTraining), and wires every component of the framework.
func Open(opts Options) (*System, error) {
	opts.fill()
	ds, err := datagen.ByName(opts.Dataset, datagen.Config{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	return OpenDataset(ds, opts)
}

// OpenDataset wires the system over a caller-provided dataset.
func OpenDataset(ds *datagen.Dataset, opts Options) (*System, error) {
	opts.fill()
	sys := &System{Options: opts, Dataset: ds}
	dir := opts.StoreDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "bytecard-store-*")
		if err != nil {
			return nil, err
		}
	}
	var err error
	sys.Store, err = modelstore.Open(dir)
	if err != nil {
		return nil, err
	}
	sys.Sketch = cardinal.NewSketchEstimator(ds.DB, cardinal.DefaultHistogramBuckets)
	sys.Sample = cardinal.NewSampleEstimator(ds.DB, cardinal.DefaultSampleRows, opts.Seed+2)
	sys.Forge = modelforge.New(ds.Name, ds.DB, ds.Schema, sys.Store, modelforge.Config{
		SampleRows:  opts.SampleRows,
		BucketCount: opts.BucketCount,
		RBX:         opts.RBX,
		Seed:        opts.Seed + 3,
	})
	sys.Infer = core.NewInferenceEngine(core.Options{Breaker: opts.Breaker})
	sys.Loader = loader.New(sys.Store, sys.Infer)
	sys.Estimator = core.NewEstimator(sys.Infer, sys.Sketch)
	sys.Estimator.Guard = core.NewGuard(opts.Guard)
	sys.Featurizer = core.NewFeaturizer(ds.DB, ds.Schema)

	if !opts.SkipTraining {
		sys.TrainReport, err = sys.Forge.TrainAll()
		if err != nil {
			return nil, err
		}
		if _, err := sys.Loader.RefreshOnce(); err != nil {
			return nil, err
		}
	}
	loader.LoadSamples(ds.DB, sys.Estimator, opts.SampleRows, opts.Seed+4)

	est, err := sys.estimatorByName(opts.Estimator)
	if err != nil {
		return nil, err
	}
	sys.Engine = engine.New(ds.DB, ds.Schema, est)
	sys.Monitor = &monitor.Monitor{
		Exec:  sys.Engine,
		Est:   sys.Estimator,
		Feat:  sys.Featurizer,
		Infer: sys.Infer,
		Seed:  opts.Seed + 5,
		RetrainTable: func(table string) error {
			_, err := sys.Forge.TrainTable(table)
			return err
		},
		FineTuneNDV: func(column string, profiles []sample.Profile, truths []float64) error {
			return sys.Forge.FineTuneRBX(column, profiles, truths, rbx.FineTuneConfig{})
		},
	}
	return sys, nil
}

func (s *System) estimatorByName(name string) (engine.CardEstimator, error) {
	switch name {
	case "bytecard":
		return s.Estimator, nil
	case "sketch":
		return s.Sketch, nil
	case "sample":
		return s.Sample, nil
	case "heuristic":
		return engine.HeuristicEstimator{}, nil
	default:
		return nil, fmt.Errorf("bytecard: unknown estimator %q", name)
	}
}

// Run executes a SQL query through the optimizer and executors.
func (s *System) Run(sql string) (*engine.Result, error) { return s.Engine.Run(sql) }

// EstimateCount returns ByteCard's COUNT cardinality estimate for a query
// without executing it.
func (s *System) EstimateCount(sql string) (float64, error) {
	fv, err := s.Featurizer.FeaturizeSQLQuery(sql)
	if err != nil {
		return 0, err
	}
	return s.Estimator.Estimate(fv)
}

// EstimateNDV returns ByteCard's COUNT-DISTINCT estimate for a query
// containing a COUNT(DISTINCT …) aggregate or GROUP BY.
func (s *System) EstimateNDV(sql string) (float64, error) {
	fv, err := s.Featurizer.FeaturizeSQLQuery(sql)
	if err != nil {
		return 0, err
	}
	return s.Estimator.EstimateNDV(fv)
}

// TrueCount executes the query's COUNT(*) form for ground truth.
func (s *System) TrueCount(sql string) (float64, error) {
	return s.Engine.TrueCardinality(workload.CountForm(sql))
}

// RefreshModels ships newly trained artifacts into the inference engine.
func (s *System) RefreshModels() (int, error) { return s.Loader.RefreshOnce() }

// Health is a point-in-time fault-tolerance snapshot of the deployment:
// how often estimation fell back, what the guard intercepted, which model
// keys are disabled or breaker-tripped, and whether the Model Loader is
// keeping up.
type Health struct {
	// Calls and Fallbacks are the estimator's request counters.
	Calls, Fallbacks int64
	// Guard counts guard interventions by failure class.
	Guard core.GuardStats
	// Registry is the inference engine snapshot, including disabled keys
	// and circuit-breaker states.
	Registry core.Stats
	// Loader reports the model-refresh loop's state.
	Loader loader.Health
}

// Health returns the system's current fault-tolerance snapshot.
func (s *System) Health() Health {
	return Health{
		Calls:     s.Estimator.Calls(),
		Fallbacks: s.Estimator.Fallbacks(),
		Guard:     s.Estimator.Guard.Stats(),
		Registry:  s.Infer.Snapshot(),
		Loader:    s.Loader.Health(),
	}
}

// SetFaultHook installs (or, with nil, removes) a fault-injection hook on
// the estimator's guard — chaos testing only.
func (s *System) SetFaultHook(h core.FaultHook) { s.Estimator.Guard.SetHook(h) }

// CheckModels runs the Model Monitor over every single-table COUNT model.
func (s *System) CheckModels() ([]monitor.TableReport, error) { return s.Monitor.CheckAll() }

// Workload generates the dataset's hybrid evaluation workload.
func (s *System) Workload(seed int64) (workload.Workload, error) {
	return workload.ByName(s.Dataset, seed)
}
