// Joinorder: demonstrates how estimation quality changes join-order
// selection. The same multi-join query is planned with the heuristic
// estimator, the traditional sketch estimator, and ByteCard's FactorJoin,
// and the resulting join orders, intermediate sizes, and latencies are
// compared.
//
//	go run ./examples/joinorder
package main

import (
	"fmt"
	"log"
	"strings"

	"bytecard"
	"bytecard/internal/engine"
	"bytecard/internal/rbx"
	"bytecard/internal/sqlparse"
)

func main() {
	fmt.Println("Training ByteCard over the STATS-like dataset...")
	sys, err := bytecard.Open(bytecard.Options{
		Dataset: "stats",
		Scale:   0.1,
		Seed:    4,
		RBX:     rbx.TrainConfig{Columns: 150, Epochs: 6, MaxPop: 20000, Seed: 13},
	})
	if err != nil {
		log.Fatal(err)
	}

	sql := `SELECT COUNT(*) FROM users, posts, comments, badges
	        WHERE posts.owner_user_id = users.id AND comments.post_id = posts.id
	          AND badges.user_id = users.id
	          AND users.reputation >= 2000 AND posts.score >= 5`
	fmt.Printf("\nQ: %s\n\n", strings.Join(strings.Fields(sql), " "))

	for _, method := range []string{"heuristic", "sketch", "bytecard"} {
		var est engine.CardEstimator
		switch method {
		case "heuristic":
			est = engine.HeuristicEstimator{}
		case "sketch":
			est = sys.Sketch
		default:
			est = sys.Estimator
		}
		exec := engine.New(sys.Dataset.DB, sys.Dataset.Schema, est)
		stmt := sqlparse.MustParse(sql)
		q, err := exec.Analyze(stmt)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := exec.Plan(q)
		if err != nil {
			log.Fatal(err)
		}
		var order []string
		for _, idx := range plan.JoinOrder {
			order = append(order, q.Tables[idx].Binding)
		}
		res, err := exec.Execute(plan)
		if err != nil {
			log.Fatal(err)
		}
		count, _ := res.ScalarInt()
		fmt.Printf("%-10s order: %-38s est-final=%10.0f  tuples-materialized=%8d  exec=%v  (result %d)\n",
			method, strings.Join(order, " -> "), plan.EstFinalRows,
			res.Metrics.RowsMaterialized, res.Metrics.ExecDuration.Round(1000), count)
	}

	fmt.Println("\nBetter join-size estimates steer the DP optimizer toward orders with")
	fmt.Println("smaller intermediates — less materialization, less CPU, lower latency.")
}
