// Lifecycle: demonstrates the operational loop the paper's framework
// automates — Data Ingestor signals trigger retraining in the ModelForge
// service, the Model Loader ships fresh artifacts into the Inference
// Engine on a timestamp basis, and the Model Monitor probes model quality,
// disabling and recalibrating models that breach the Q-error threshold.
//
//	go run ./examples/lifecycle
package main

import (
	"fmt"
	"log"
	"time"

	"bytecard"
	"bytecard/internal/rbx"
)

func main() {
	fmt.Println("Opening the STATS-like dataset with full training...")
	sys, err := bytecard.Open(bytecard.Options{
		Dataset: "stats",
		Scale:   0.05,
		Seed:    5,
		RBX:     rbx.TrainConfig{Columns: 150, Epochs: 6, MaxPop: 20000, Seed: 14},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d artifacts; registry: %+v\n\n", len(sys.TrainReport.Models), sys.Infer.Snapshot())

	// 1. The Model Monitor probes every single-table COUNT model.
	sys.Monitor.Threshold = 100
	sys.Monitor.Probes = 8
	reports, err := sys.CheckModels()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Model Monitor sweep:")
	for _, r := range reports {
		status := "healthy"
		if r.Breached {
			status = "BREACHED -> disabled, retraining triggered"
		}
		fmt.Printf("  %-14s worst probe q-error %6.2f  %s\n", r.Table, r.Worst, status)
	}

	// 2. Data Ingestor signals: enough ingested rows trigger retraining.
	fmt.Println("\nSignalling data ingestion for 'posts' (Kafka-style consumption info)...")
	before := sys.Infer.Timestamp("bn:posts")
	if err := sys.Forge.NotifyIngest("posts", 50); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  +50 rows: below threshold, no retrain")
	if _, err := sys.Forge.TrainTableAt("posts", time.Now().Add(time.Second)); err != nil {
		log.Fatal(err)
	}
	n, err := sys.RefreshModels()
	if err != nil {
		log.Fatal(err)
	}
	after := sys.Infer.Timestamp("bn:posts")
	fmt.Printf("  retrained + loader refresh: %d artifact(s) reloaded, model version %v -> %v\n",
		n, before.Format("15:04:05.000"), after.Format("15:04:05.000"))

	// 3. RBX calibration: probe an NDV column, force a breach, fine-tune,
	// revalidate.
	fmt.Println("\nForcing an NDV breach to exercise the calibration protocol...")
	sys.Monitor.Threshold = 0.5 // below the metric floor: every probe breaches
	sys.Monitor.Probes = 4
	rep, err := sys.Monitor.CheckNDV("posts", "view_count")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  breach=%v -> rbx:posts.view_count disabled=%v (estimates fall back to GEE)\n",
		rep.Breached, sys.Infer.Disabled("rbx:posts.view_count"))
	if _, err := sys.RefreshModels(); err != nil { // pick up fine-tuned RBX
		log.Fatal(err)
	}
	sys.Monitor.Threshold = 1000
	rep, err = sys.Monitor.RevalidateNDV("posts", "view_count")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  revalidation: breach=%v, column re-enabled=%v\n",
		rep.Breached, !sys.Infer.Disabled("rbx:posts.view_count"))

	// 4. Old artifacts can be purged like the paper's training residue.
	removed, err := sys.Store.Purge(time.Now().Add(-24 * time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStore purge of >24h-old artifacts removed %d entries (all current).\n", removed)
}
