// Aggregation: demonstrates RBX-driven hash-table presizing during GROUP BY
// processing — the paper's Figure 6b mechanism. The same aggregation runs
// with ByteCard's NDV estimate sizing the hash table and with a cold-start
// table, and the resize counts are compared.
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"log"

	"bytecard"
	"bytecard/internal/rbx"
)

func main() {
	fmt.Println("Training ByteCard over the AEOLUS-like dataset...")
	sys, err := bytecard.Open(bytecard.Options{
		Dataset: "aeolus",
		Scale:   0.05,
		Seed:    3,
		RBX:     rbx.TrainConfig{Columns: 250, Epochs: 8, MaxPop: 40000, Seed: 12},
	})
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"SELECT ad_events.event_type, ad_events.duration, COUNT(*) FROM ad_events GROUP BY ad_events.event_type, ad_events.duration",
		"SELECT users_dim.age_group, users_dim.region, COUNT(*), AVG(ad_events.cost) FROM ad_events, users_dim WHERE ad_events.user_id = users_dim.id GROUP BY users_dim.age_group, users_dim.region",
	}
	for _, sql := range queries {
		fmt.Printf("\nQ: %s\n", sql)

		res, err := sys.Run(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  with RBX presizing: %5d groups, initial capacity %5d, %d resizes\n",
			len(res.Rows), res.Metrics.InitialAggCapacity, res.Metrics.HashResizes)

		sys.Engine.DisableNDVPresize = true
		sys.Engine.AggCapacity = 16
		cold, err := sys.Run(sql)
		sys.Engine.DisableNDVPresize = false
		sys.Engine.AggCapacity = 0
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cold start:         %5d groups, initial capacity %5d, %d resizes\n",
			len(cold.Rows), cold.Metrics.InitialAggCapacity, cold.Metrics.HashResizes)
		if len(res.Rows) != len(cold.Rows) {
			log.Fatalf("presizing changed results: %d vs %d groups", len(res.Rows), len(cold.Rows))
		}
	}

	fmt.Println("\nAccurate NDV estimates size the hash table once; cold starts pay")
	fmt.Println("repeated rehashing — the cost that grows with data scale in Fig 6b.")
}
