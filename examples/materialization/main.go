// Materialization: demonstrates how ByteCard's selectivity estimates drive
// the engine's reader choice — the multi-stage reader (staged, late
// materialization) for selective conjunctions versus the single-stage
// reader for non-selective ones — and measures the block I/O difference,
// the mechanism behind the paper's Figure 6a.
//
//	go run ./examples/materialization
package main

import (
	"fmt"
	"log"

	"bytecard"
	"bytecard/internal/rbx"
)

func main() {
	fmt.Println("Training ByteCard over the STATS-like dataset...")
	sys, err := bytecard.Open(bytecard.Options{
		Dataset: "stats",
		Scale:   0.3, // enough rows for multi-block columns
		Seed:    2,
		RBX:     rbx.TrainConfig{Columns: 150, Epochs: 6, MaxPop: 20000, Seed: 11},
	})
	if err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		label string
		sql   string
	}{
		// creation_year is time-clustered in storage (append-only
		// ingestion), so the staged reader can skip whole blocks of the
		// later columns once the year predicate prunes.
		{"selective conjunction", "SELECT COUNT(*) FROM posts WHERE creation_year >= 2014 AND score >= 20 AND view_count >= 1500"},
		{"non-selective filter", "SELECT COUNT(*) FROM posts WHERE score >= -2 AND view_count >= 1"},
	}
	for _, q := range queries {
		res, err := sys.Run(q.sql)
		if err != nil {
			log.Fatal(err)
		}
		count, _ := res.ScalarInt()
		fmt.Printf("\n%s:\n  %s\n  -> %d rows, strategy=%s, %d blocks read\n",
			q.label, q.sql, count, res.Metrics.ReaderStrategy["posts"], res.Metrics.IO.BlocksRead())

		// Force the opposite strategy to show the I/O delta.
		forced := "single-stage"
		if res.Metrics.ReaderStrategy["posts"] == "single-stage" {
			forced = "multi-stage"
		}
		sys.Engine.ForceReader = forced
		alt, err := sys.Run(q.sql)
		sys.Engine.ForceReader = ""
		if err != nil {
			// multi-stage requires conjunctive filters; skip politely.
			fmt.Printf("  (forced %s unavailable: %v)\n", forced, err)
			continue
		}
		altCount, _ := alt.ScalarInt()
		if altCount != count {
			log.Fatalf("strategies disagree: %d vs %d", count, altCount)
		}
		fmt.Printf("  forced %-12s -> same result, %d blocks read\n", forced, alt.Metrics.IO.BlocksRead())
	}

	fmt.Println("\nColumn-order selection: the optimizer orders predicate columns by")
	fmt.Println("conditional selectivity from the Bayesian network, so correlated")
	fmt.Println("columns are read in the order that prunes earliest.")
}
