// Costmodel: demonstrates the paper's "future integration" — a
// query-driven learned cost model trained on runtime traces and deployed
// through the same framework (store → loader → inference engine) as the
// cardinality models. The trained model predicts per-plan latency, the
// input for admission control and workload management.
//
//	go run ./examples/costmodel
package main

import (
	"fmt"
	"log"
	"math"

	"bytecard"
	"bytecard/internal/cardinal"
	"bytecard/internal/costmodel"
	"bytecard/internal/rbx"
	"bytecard/internal/sqlparse"
)

func main() {
	fmt.Println("Opening the IMDB-like dataset...")
	sys, err := bytecard.Open(bytecard.Options{
		Dataset: "imdb",
		Scale:   0.03,
		Seed:    6,
		RBX:     rbx.TrainConfig{Columns: 120, Epochs: 5, MaxPop: 20000, Seed: 15},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Collect runtime traces: the warehouse logs plan features and
	// measured latencies for every executed query.
	w, err := sys.Workload(11)
	if err != nil {
		log.Fatal(err)
	}
	var sqls []string
	for _, q := range w.Queries {
		sqls = append(sqls, q.SQL)
	}
	fmt.Printf("Collecting runtime traces from %d workload queries...\n", len(sqls))
	traces, err := costmodel.CollectTraces(sys.Engine, sqls)
	if err != nil {
		log.Fatal(err)
	}

	// 2. ModelForge trains the cost model and stores the artifact; the
	// Model Loader ships it into the Inference Engine like any other model.
	train, test := traces[:80], traces[80:]
	if _, err := sys.Forge.TrainCostModel(train, costmodel.TrainConfig{Seed: 7}); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RefreshModels(); err != nil {
		log.Fatal(err)
	}
	model := sys.Infer.CostModel()
	if model == nil {
		log.Fatal("cost model not loaded")
	}
	fmt.Printf("Cost model trained on %d traces (%.0f KB) and loaded.\n\n",
		len(train), float64(model.SizeBytes())/1024)

	// 3. Evaluate held-out prediction quality against a mean baseline.
	var meanLog float64
	for _, tr := range train {
		meanLog += math.Log1p(tr.Millis)
	}
	meanLog /= float64(len(train))
	var modelErr, baseErr float64
	for _, tr := range test {
		y := math.Log1p(tr.Millis)
		//bytecard:directcall-ok offline evaluation measures the raw model; no query depends on the output
		p := math.Log1p(model.PredictMillis(tr.Features))
		modelErr += (p - y) * (p - y)
		baseErr += (meanLog - y) * (meanLog - y)
	}
	fmt.Printf("Held-out log-latency MSE: model %.3f vs mean-baseline %.3f (%d queries)\n\n",
		modelErr/float64(len(test)), baseErr/float64(len(test)), len(test))

	// 4. Predict the cost of an unseen plan before running it.
	sql := "SELECT COUNT(*) FROM title, cast_info, movie_keyword WHERE cast_info.movie_id = title.id AND movie_keyword.movie_id = title.id AND title.production_year >= 2000"
	q, err := sys.Engine.Analyze(sqlparse.MustParse(sql))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sys.Engine.Plan(q)
	if err != nil {
		log.Fatal(err)
	}
	predicted := model.PredictPlan(plan) //bytecard:directcall-ok demo compares the raw prediction against the measured runtime
	res, err := sys.Engine.Execute(plan)
	if err != nil {
		log.Fatal(err)
	}
	actual := float64(res.Metrics.ExecDuration.Microseconds()) / 1000
	fmt.Printf("Q: %s\n   predicted %.2f ms, measured %.2f ms (q-error %.2f)\n",
		sql, predicted, actual, cardinal.QError(math.Max(predicted, 0.001), math.Max(actual, 0.001)))
}
