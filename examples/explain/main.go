// Explain: open a ByteCard system, EXPLAIN a join query to see per-node
// cardinality estimates with the model that produced each one, inspect a
// fully traced estimate, and dump the system-wide metrics snapshot.
//
//	go run ./examples/explain
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"bytecard"
	"bytecard/internal/rbx"
)

func main() {
	fmt.Println("Training ByteCard over the toy dataset...")
	sys, err := bytecard.Open(bytecard.Options{
		Dataset: "toy",
		Scale:   2,
		Seed:    1,
		RBX:     rbx.TrainConfig{Columns: 80, Epochs: 4, MaxPop: 10000, Seed: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 1. EXPLAIN: the chosen plan, each node annotated with its estimate
	// and the estimator source (bn / factorjoin / rbx / sketch fallback).
	sql := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat <= 3 GROUP BY d.cat"
	res, err := sys.Explain(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEXPLAIN %s\n%s", sql, res)

	// 2. The trace behind the plan: every estimation step planning took.
	fmt.Println("\nPlanning trace:")
	for _, s := range res.Trace {
		fmt.Println("  " + s.String())
	}

	// 3. A detailed point estimate: value plus provenance.
	d, err := sys.Estimate("SELECT COUNT(*) FROM fact WHERE val < 50", bytecard.EstimateOpts{Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEstimate: value=%.1f source=%s fallback=%v (%d spans)\n",
		d.Value, d.Source, d.Fallback, d.Trace.Len())

	// 4. The system-wide metrics snapshot (what ExpvarFunc publishes).
	b, err := json.MarshalIndent(sys.Metrics(), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMetrics:\n%s\n", b)
}
