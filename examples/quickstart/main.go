// Quickstart: open a ByteCard system over the IMDB-like dataset, run SQL
// through the learned-estimator-driven optimizer, and compare ByteCard's
// cardinality estimates against ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bytecard"
	"bytecard/internal/rbx"
)

func main() {
	fmt.Println("Training ByteCard over the IMDB-like dataset (a few seconds)...")
	sys, err := bytecard.Open(bytecard.Options{
		Dataset: "imdb",
		Scale:   0.02,
		Seed:    1,
		RBX:     rbx.TrainConfig{Columns: 200, Epochs: 8, MaxPop: 30000, Seed: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Loaded %d tables (%d rows); trained %d model artifacts.\n\n",
		len(sys.Dataset.DB.TableNames()), sys.Dataset.DB.TotalRows(), len(sys.TrainReport.Models))

	// 1. Execute a query end to end.
	sql := "SELECT COUNT(*) FROM title WHERE production_year >= 2005 AND kind_id = 2"
	res, err := sys.Run(sql)
	if err != nil {
		log.Fatal(err)
	}
	count, _ := res.ScalarInt()
	fmt.Printf("Q: %s\n   -> %d rows (plan %v, exec %v, reader %v)\n\n",
		sql, count, res.Metrics.PlanDuration.Round(1000), res.Metrics.ExecDuration.Round(1000),
		res.Metrics.ReaderStrategy)

	// 2. Cardinality estimation without execution — the correlated
	// predicate (TV series skew recent) is where the Bayesian network
	// shines over independence assumptions.
	est, err := sys.EstimateCount(sql)
	if err != nil {
		log.Fatal(err)
	}
	truth, _ := sys.TrueCount(sql)
	fmt.Printf("ByteCard estimate: %.0f   truth: %.0f   q-error: %.2f\n\n", est, truth, qerr(est, truth))

	// 3. Join-size estimation through FactorJoin.
	join := "SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id AND t.production_year > 2010"
	est, err = sys.EstimateCount(join)
	if err != nil {
		log.Fatal(err)
	}
	truth, _ = sys.TrueCount(join)
	fmt.Printf("Join estimate:     %.0f   truth: %.0f   q-error: %.2f\n\n", est, truth, qerr(est, truth))

	// 4. NDV estimation through RBX.
	ndvSQL := "SELECT COUNT(DISTINCT cast_info.person_id) FROM cast_info WHERE cast_info.role_id = 1"
	est, err = sys.EstimateNDV(ndvSQL)
	if err != nil {
		log.Fatal(err)
	}
	res, _ = sys.Run(ndvSQL)
	ndvTruth, _ := res.ScalarInt()
	fmt.Printf("NDV estimate:      %.0f   truth: %d   q-error: %.2f\n", est, ndvTruth, qerr(est, float64(ndvTruth)))
}

func qerr(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}
