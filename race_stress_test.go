package bytecard

import (
	"sync"
	"testing"

	"bytecard/internal/sqlparse"
)

// Serving-tier race stress: eight goroutines hammer the three shared
// mutable surfaces of one System at once — the estimator (Estimate with
// its inference caches), the plan cache (plan, replay, flush), and the
// per-model circuit breakers (trip, probe, recover, with the cache
// flushes Enable triggers) — under `go test -race`. The point is not the
// answers (parity tests cover those) but that no interleaving of lock
// acquisition, atomic counters, and cache invalidation races: exactly the
// surface the locksafe/atomicfield analyzers reason about statically, and
// what this test checks dynamically.
func TestConcurrentServingStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	sys, err := Open(Options{Dataset: "imdb", Scale: 0.1, Seed: 7, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := fastpathQueries["imdb"]
	breakerKeys := []string{"bn:title", "factorjoin"}

	const iters = 60
	start := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}

	// Three estimator hammers share the inference caches and pooled
	// scratch; breaker trips from the goroutines below force mid-stream
	// fallbacks and cache flushes under them.
	for g := 0; g < 3; g++ {
		g := g
		worker(func(i int) {
			sql := queries[(g+i)%len(queries)]
			if _, err := sys.Estimate(sql, EstimateOpts{}); err != nil {
				t.Errorf("Estimate(%q): %v", sql, err)
			}
		})
	}

	// Two planner hammers mix cold misses, warm hits, and flushes on the
	// shared template plan cache.
	for g := 0; g < 2; g++ {
		g := g
		worker(func(i int) {
			sql := queries[(g+i)%len(queries)]
			stmt, err := sqlparse.Parse(sql)
			if err != nil {
				t.Errorf("parse %q: %v", sql, err)
				return
			}
			q, err := sys.Engine.Analyze(stmt)
			if err != nil {
				t.Errorf("analyze %q: %v", sql, err)
				return
			}
			if _, err := sys.Engine.Plan(q); err != nil {
				t.Errorf("plan %q: %v", sql, err)
				return
			}
			if i%7 == g {
				sys.Engine.PlanCache.Flush()
			}
		})
	}

	// Two breaker hammers trip and recover model keys the estimators are
	// using; Enable's reset also flushes the inference caches, racing the
	// estimate path's reads.
	for g := 0; g < 2; g++ {
		g := g
		worker(func(i int) {
			key := breakerKeys[(g+i)%len(breakerKeys)]
			for n := 0; n < 4; n++ {
				sys.Infer.RecordFailure(key)
			}
			_ = sys.Infer.BreakerState(key)
			_ = sys.Infer.Allow(key)
			sys.Infer.RecordSuccess(key)
			sys.Infer.Enable(key)
		})
	}

	// One observer hammers the metrics snapshot, which reads every atomic
	// counter the other seven goroutines are writing.
	worker(func(i int) {
		_ = sys.Metrics()
	})

	close(start)
	wg.Wait()

	// The system must still serve once the storm passes.
	for _, key := range breakerKeys {
		sys.Infer.Enable(key)
	}
	if _, err := sys.Estimate(queries[0], EstimateOpts{}); err != nil {
		t.Fatalf("post-stress estimate: %v", err)
	}
}
