package bytecard

import (
	"testing"
	"time"

	"bytecard/internal/cardinal"
	"bytecard/internal/rbx"
	"bytecard/internal/sqlparse"
)

// Residual-corrector system tests: the feature flag must be inert when off
// (estimates byte-identical to a system without the corrector), the
// executed-truth loop must feed the corrector through ordinary Run calls,
// and model churn must provably reset corrector state via the DerivedCache
// registry.

func openResidualToy(t *testing.T, residualOn bool) *System {
	t.Helper()
	sys, err := Open(Options{
		Dataset: "toy", Scale: 2, Seed: 11, ResidualCorrection: residualOn,
		RBX: rbx.TrainConfig{Columns: 80, Epochs: 4, MaxPop: 10000, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// planEstimate routes sql through the optimizer's estimation entry points
// (the ones the corrector hooks), without executing.
func planEstimate(t *testing.T, sys *System, sql string) float64 {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Engine.Analyze(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) == 1 {
		return sys.Estimator.EstimateFilter(q.Tables[0])
	}
	return sys.Estimator.EstimateJoin(q.Tables, q.Joins)
}

var residualProbeSQLs = []string{
	"SELECT COUNT(*) FROM fact WHERE fact.val < 40",
	"SELECT COUNT(*) FROM fact WHERE fact.flag = 1 AND fact.val >= 50",
	"SELECT COUNT(*) FROM dim WHERE dim.cat <= 3",
	"SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND f.val < 40",
	"SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat = 2 AND f.flag = 0",
}

func TestResidualFlagOffIsInert(t *testing.T) {
	off := openResidualToy(t, false)
	on := openResidualToy(t, true)

	if off.Residual != nil {
		t.Fatal("flag-off system allocated a corrector")
	}
	if on.Residual == nil {
		t.Fatal("flag-on system has no corrector")
	}
	if _, ok := off.Metrics().Caches["residual"]; ok {
		t.Error("flag-off system registered a residual cache")
	}
	if _, ok := on.Metrics().Caches["residual"]; !ok {
		t.Error("flag-on system did not register the residual cache")
	}
	if snap := off.Metrics().Residual; snap.Observations != 0 || snap.Applications != 0 {
		t.Errorf("flag-off residual snapshot not zero: %+v", snap)
	}

	// With an empty corrector the flag must not perturb a single estimate:
	// identical training (same seed) plus a factor-1 correction path must
	// reproduce the flag-off numbers exactly.
	for _, sql := range residualProbeSQLs {
		a, b := planEstimate(t, off, sql), planEstimate(t, on, sql)
		if a != b {
			t.Errorf("%s: flag-on (empty corrector) estimate %g != flag-off %g", sql, b, a)
		}
	}
}

func TestResidualLearnsFromRunLoop(t *testing.T) {
	sys := openResidualToy(t, true)
	sql := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND f.val < 40"

	before := planEstimate(t, sys, sql)
	truth, err := sys.TrueCount(sql) // executes via Run, so it observes too
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Metrics().Residual.Observations
	// Ordinary execution feeds the corrector: plan estimate + executed
	// truth per statement, on cache misses and plan-cache hits alike.
	const runs = 6
	for i := 0; i < runs; i++ {
		if _, err := sys.Run(sql); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Residual.Len() == 0 {
		t.Fatal("executed statements materialized no residual buckets")
	}
	snap := sys.Metrics().Residual
	if snap.Observations-base != runs {
		t.Errorf("corrector absorbed %d observations over the loop, want %d", snap.Observations-base, runs)
	}
	after := planEstimate(t, sys, sql)
	qBefore, qAfter := cardinal.QError(before, truth), cardinal.QError(after, truth)
	if qAfter > qBefore*1.0001 {
		t.Errorf("corrected estimate %g (q=%.4f) worse than uncorrected %g (q=%.4f) against truth %g",
			after, qAfter, before, qBefore, truth)
	}
	// The metrics surface must show the estimation-path activity.
	if total := sys.Metrics().Residual.Applications + sys.Metrics().Residual.Skipped; total == 0 {
		t.Error("correction path never consulted the corrector")
	}
}

func TestModelChurnResetsResidual(t *testing.T) {
	sys := openResidualToy(t, true)
	factOnly := "SELECT COUNT(*) FROM fact WHERE fact.val < 50"
	joined := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat <= 3"
	for _, sql := range []string{factOnly, joined} {
		for i := 0; i < 3; i++ {
			if _, err := sys.Run(sql); err != nil {
				t.Fatal(err)
			}
		}
	}
	if sys.Residual.Len() < 2 {
		t.Fatalf("corrector holds %d buckets, want >= 2 (both templates)", sys.Residual.Len())
	}

	// Retraining dim ships through RefreshModels and must drop exactly the
	// buckets whose templates touch dim — their residuals measured models
	// that no longer serve the estimates.
	beforeLen := sys.Residual.Len()
	if _, err := sys.Forge.TrainTableAt("dim", time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RefreshModels(); err != nil {
		t.Fatal(err)
	}
	afterLen := sys.Residual.Len()
	if afterLen >= beforeLen {
		t.Errorf("retraining dim left bucket count %d -> %d, want a drop", beforeLen, afterLen)
	}
	if afterLen == 0 {
		t.Error("retraining dim dropped fact-only buckets too")
	}
	if sys.Residual.Stats().Invalidations == 0 {
		t.Error("retrain recorded no residual invalidations")
	}

	// Disabling a model flushes everything (corrections may embed it).
	sys.Infer.Admin().Disable("bn:fact")
	if n := sys.Residual.Len(); n != 0 {
		t.Errorf("disable left %d residual buckets", n)
	}
	sys.Infer.Admin().Enable("bn:fact")

	// Admin flush routes through the same registry.
	for i := 0; i < 3; i++ {
		if _, err := sys.Run(factOnly); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Residual.Len() == 0 {
		t.Fatal("post-churn executions did not rebuild buckets")
	}
	if n := sys.Infer.Admin().FlushCaches(); n == 0 {
		t.Error("admin flush dropped nothing")
	}
	if n := sys.Residual.Len(); n != 0 {
		t.Errorf("admin flush left %d residual buckets", n)
	}
}

// TestResidualOnlyFeedsByteCardEstimator guards the truth hook's gating:
// running under a traditional estimator must not teach the corrector —
// its residuals would calibrate against the wrong estimates.
func TestResidualOnlyFeedsByteCardEstimator(t *testing.T) {
	sys, err := Open(Options{
		Dataset: "toy", Scale: 2, Seed: 11, ResidualCorrection: true, Estimator: "sketch",
		RBX: rbx.TrainConfig{Columns: 80, Epochs: 4, MaxPop: 10000, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("SELECT COUNT(*) FROM fact WHERE fact.val < 50"); err != nil {
		t.Fatal(err)
	}
	if sys.Engine.OnTruth != nil {
		t.Error("truth hook wired under a non-ByteCard estimator")
	}
	if sys.Residual != nil && sys.Residual.Len() != 0 {
		t.Errorf("corrector learned %d buckets from sketch estimates", sys.Residual.Len())
	}
}
