package bytecard

import (
	"reflect"
	"testing"

	"bytecard/internal/engine"
)

// Pushdown parity system tests: with the real ByteCard estimator in the
// planner, the pushdown scan contract (zone-map block skipping,
// predicate/projection/limit pushdown, late materialization) must be an
// I/O optimization only — results byte-identical to the legacy scan path
// across the JOB-Hybrid, STATS-Hybrid, and TimeSeries-Probes workloads,
// while never reading more blocks than it.

// runWithPushdown executes sql with the knob pinned to on (+1) or off (-1),
// restoring the engine's default afterwards.
func runWithPushdown(t *testing.T, sys *System, sql string, pushdown int) *engine.Result {
	t.Helper()
	prev := sys.Engine.Pushdown
	sys.Engine.Pushdown = pushdown
	defer func() { sys.Engine.Pushdown = prev }()
	res, err := sys.Run(sql)
	if err != nil {
		t.Fatalf("%s (pushdown=%d): %v", sql, pushdown, err)
	}
	return res
}

// TestPushdownParityWorkloads runs every workload query twice — pushdown
// on, then off — on the same trained system and requires byte-identical
// result sets. The plan cache stays hot across both runs, so this also
// exercises the warm-hit re-gating path (a cached template's pushdown
// decision must bow to the live knob).
func TestPushdownParityWorkloads(t *testing.T) {
	for _, dataset := range []string{"imdb", "stats", "timeseries"} {
		sys := fastpathSystem(t, dataset)
		w, err := sys.Workload(17)
		if err != nil {
			t.Fatal(err)
		}
		queries := w.Queries
		if len(queries) > 20 {
			queries = queries[:20]
		}
		var onBlocks, offBlocks, skipped int64
		for _, wq := range queries {
			on := runWithPushdown(t, sys, wq.SQL, 1)
			off := runWithPushdown(t, sys, wq.SQL, -1)
			if !reflect.DeepEqual(on.Columns, off.Columns) || !reflect.DeepEqual(on.Rows, off.Rows) {
				t.Errorf("%s/%s: pushdown-on result diverges from pushdown-off", dataset, wq.SQL)
			}
			if onRead, offRead := on.Metrics.IO.BlocksRead(), off.Metrics.IO.BlocksRead(); onRead > offRead {
				t.Errorf("%s/%s: pushdown read %d blocks, legacy path %d — pushdown must never read more",
					dataset, wq.SQL, onRead, offRead)
			}
			onBlocks += on.Metrics.IO.BlocksRead()
			offBlocks += off.Metrics.IO.BlocksRead()
			skipped += on.Metrics.IO.BlocksSkipped()
		}
		t.Logf("%s: %d queries, blocks %d pushdown vs %d legacy (%d skipped)",
			dataset, len(queries), onBlocks, offBlocks, skipped)
		// The time-series probes are built to be zone-skippable: narrow
		// append-ordered windows must show a strict read reduction.
		if dataset == "timeseries" && (onBlocks >= offBlocks || skipped == 0) {
			t.Errorf("timeseries: pushdown read %d blocks vs %d legacy, %d skipped — expected strict reduction",
				onBlocks, offBlocks, skipped)
		}
	}
}
