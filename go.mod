module bytecard

go 1.22
