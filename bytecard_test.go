package bytecard

import (
	"testing"

	"bytecard/internal/cardinal"
	"bytecard/internal/rbx"
)

func openToy(t *testing.T) *System {
	t.Helper()
	sys, err := Open(Options{
		Dataset: "toy", Scale: 2, Seed: 11,
		RBX: rbx.TrainConfig{Columns: 80, Epochs: 4, MaxPop: 10000, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOpenAndRun(t *testing.T) {
	sys := openToy(t)
	res, err := sys.Run("SELECT COUNT(*) FROM fact WHERE val < 50")
	if err != nil {
		t.Fatal(err)
	}
	n, err := res.ScalarInt()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("count = %d", n)
	}
	if sys.TrainReport == nil || len(sys.TrainReport.Models) == 0 {
		t.Error("training report missing")
	}
}

func TestEstimateCountAccuracy(t *testing.T) {
	sys := openToy(t)
	sql := "SELECT COUNT(*) FROM fact WHERE val >= 50 AND flag = 1"
	est, err := sys.EstimateCount(sql)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := sys.TrueCount(sql)
	if err != nil {
		t.Fatal(err)
	}
	if q := cardinal.QError(est, truth); q > 1.5 {
		t.Errorf("estimate %g vs truth %g (q=%g)", est, truth, q)
	}
}

func TestEstimateJoinThroughFacade(t *testing.T) {
	sys := openToy(t)
	sql := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat <= 3"
	est, err := sys.EstimateCount(sql)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := sys.TrueCount(sql)
	if err != nil {
		t.Fatal(err)
	}
	if q := cardinal.QError(est, truth); q > 3 {
		t.Errorf("join estimate %g vs truth %g (q=%g)", est, truth, q)
	}
}

func TestEstimateNDVThroughFacade(t *testing.T) {
	sys := openToy(t)
	sql := "SELECT COUNT(DISTINCT fact.val) FROM fact"
	est, err := sys.EstimateNDV(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := res.ScalarInt()
	if q := cardinal.QError(est, float64(truth)); q > 2.5 {
		t.Errorf("NDV estimate %g vs truth %d (q=%g)", est, truth, q)
	}
}

func TestSkipTrainingFallsBack(t *testing.T) {
	sys, err := Open(Options{Dataset: "toy", Scale: 1, Seed: 3, SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("SELECT COUNT(*) FROM fact"); err != nil {
		t.Fatal(err)
	}
	if sys.Estimator.Fallbacks() == 0 {
		// Run issues at least one estimate; without models it must fall
		// back — unless the single-table COUNT skipped estimation, so
		// force one.
		if _, err := sys.Run("SELECT COUNT(*) FROM fact WHERE val < 10"); err != nil {
			t.Fatal(err)
		}
		if sys.Estimator.Fallbacks() == 0 {
			t.Error("expected fallback without trained models")
		}
	}
	// Training then refreshing enables the models.
	if _, err := sys.Forge.TrainAll(); err != nil {
		t.Fatal(err)
	}
	n, err := sys.RefreshModels()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("refresh loaded nothing after training")
	}
}

func TestCheckModels(t *testing.T) {
	sys := openToy(t)
	sys.Monitor.Threshold = 1e9
	sys.Monitor.Probes = 3
	reports, err := sys.CheckModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Errorf("reports = %d", len(reports))
	}
}

func TestWorkloadGeneration(t *testing.T) {
	sys := openToy(t)
	w, err := sys.Workload(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) == 0 {
		t.Fatal("empty workload")
	}
	for _, q := range w.Queries[:5] {
		if _, err := sys.Run(q.SQL); err != nil {
			t.Errorf("workload query failed: %s: %v", q.SQL, err)
		}
	}
}

func TestUnknownOptions(t *testing.T) {
	if _, err := Open(Options{Dataset: "nope"}); err == nil {
		t.Error("unknown dataset must error")
	}
	if _, err := Open(Options{Dataset: "toy", Scale: 1, Estimator: "nope", SkipTraining: true}); err == nil {
		t.Error("unknown estimator must error")
	}
}

func TestHealthSnapshot(t *testing.T) {
	sys := openToy(t)
	if _, err := sys.Run("SELECT COUNT(*) FROM fact WHERE val < 50"); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	if m.Estimator.Calls == 0 {
		t.Error("metrics show no estimator calls")
	}
	if m.Estimator.Fallbacks != 0 {
		t.Errorf("healthy system fell back %d times", m.Estimator.Fallbacks)
	}
	if g := m.Guard; g.Panics+g.Timeouts+g.Invalid != 0 {
		t.Errorf("healthy system recorded guard trips: %+v", g)
	}
	if !m.Registry.HasFJ || !m.Registry.HasRBX {
		t.Errorf("registry incomplete: %+v", m.Registry)
	}
	if len(m.Registry.Disabled) != 0 || len(m.Registry.Breakers) != 0 {
		t.Errorf("healthy system shows degradation: %+v", m.Registry)
	}
	if m.Loader.LastSuccess.IsZero() || m.Loader.ConsecutiveFailures != 0 {
		t.Errorf("loader health = %+v", m.Loader)
	}
}
