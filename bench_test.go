// Benchmarks regenerating every table and figure of the paper's evaluation
// (Tables 1–3, 5, 6; Figures 5, 6a, 6b, 7) plus ablations of the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark performs the full experiment per iteration and
// attaches its headline numbers as custom metrics; cmd/bytecard-bench
// renders the same experiments as human-readable tables.
package bytecard

import (
	"fmt"
	"sync"
	"testing"

	"bytecard/internal/bench"
	"bytecard/internal/bn"
	"bytecard/internal/cardinal"
	"bytecard/internal/datagen"
	"bytecard/internal/expr"
	"bytecard/internal/factorjoin"
	"bytecard/internal/rbx"
	"bytecard/internal/sample"
	"bytecard/internal/sqlparse"
	"bytecard/internal/types"
)

// benchCfg keeps experiment benchmarks tractable; scale up via
// cmd/bytecard-bench for fuller runs.
func benchCfg() bench.Config {
	return bench.Config{
		Scale:      0.02,
		Seed:       1,
		ProbeCount: 30,
		SampleRows: 4000,
		RBX:        rbx.TrainConfig{Columns: 200, Epochs: 8, MaxPop: 30000, Seed: 10},
	}
}

var (
	envMu    sync.Mutex
	envCache = map[string]*bench.Env{}
)

func benchEnv(b *testing.B, dataset string) *bench.Env {
	b.Helper()
	envMu.Lock()
	defer envMu.Unlock()
	if env, ok := envCache[dataset]; ok {
		return env
	}
	env, err := bench.NewEnv(dataset, benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	envCache[dataset] = env
	return env
}

func reportQErrors(b *testing.B, rows []bench.QErrorRow) {
	for _, r := range rows {
		prefix := r.Kind
		b.ReportMetric(r.Summary.P50, prefix+"-p50")
		b.ReportMetric(r.Summary.P90, prefix+"-p90")
		b.ReportMetric(r.Summary.P99, prefix+"-p99")
	}
}

// --- Table 1: traditional estimator Q-errors ---

func benchmarkTable1(b *testing.B, dataset string) {
	env := benchEnv(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := env.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportQErrors(b, rows)
		}
	}
}

func BenchmarkTable1_Traditional_IMDB(b *testing.B)   { benchmarkTable1(b, "imdb") }
func BenchmarkTable1_Traditional_STATS(b *testing.B)  { benchmarkTable1(b, "stats") }
func BenchmarkTable1_Traditional_AEOLUS(b *testing.B) { benchmarkTable1(b, "aeolus") }

// --- Table 2: learned estimator Q-errors ---

func benchmarkTable2(b *testing.B, dataset string) {
	env := benchEnv(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := env.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportQErrors(b, rows)
		}
	}
}

func BenchmarkTable2_ByteCard_IMDB(b *testing.B)   { benchmarkTable2(b, "imdb") }
func BenchmarkTable2_ByteCard_STATS(b *testing.B)  { benchmarkTable2(b, "stats") }
func BenchmarkTable2_ByteCard_AEOLUS(b *testing.B) { benchmarkTable2(b, "aeolus") }

// --- Table 3: training time and model size ---

func benchmarkTable3(b *testing.B, dataset string) {
	env := benchEnv(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := env.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.TrainSeconds, r.Method+"-train-s")
				b.ReportMetric(float64(r.ModelBytes)/1024, r.Method+"-size-KB")
			}
		}
	}
}

func BenchmarkTable3_TrainingCost_IMDB(b *testing.B)   { benchmarkTable3(b, "imdb") }
func BenchmarkTable3_TrainingCost_STATS(b *testing.B)  { benchmarkTable3(b, "stats") }
func BenchmarkTable3_TrainingCost_AEOLUS(b *testing.B) { benchmarkTable3(b, "aeolus") }

// --- Table 5: workload statistics ---

func benchmarkTable5(b *testing.B, dataset string) {
	env := benchEnv(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := env.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(s.Queries), "queries")
			b.ReportMetric(float64(s.JoinTemplates), "join-templates")
			b.ReportMetric(float64(s.MaxTables), "max-tables")
			b.ReportMetric(float64(s.MaxGroupKeys), "max-group-keys")
			b.ReportMetric(s.MaxCard, "max-true-card")
		}
	}
}

func BenchmarkTable5_WorkloadStats_IMDB(b *testing.B)   { benchmarkTable5(b, "imdb") }
func BenchmarkTable5_WorkloadStats_STATS(b *testing.B)  { benchmarkTable5(b, "stats") }
func BenchmarkTable5_WorkloadStats_AEOLUS(b *testing.B) { benchmarkTable5(b, "aeolus") }

// --- Table 6: model details ---

func benchmarkTable6(b *testing.B, dataset string) {
	env := benchEnv(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := env.Table6()
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.SizeBytes)/1024, r.Method+"-KB")
				b.ReportMetric(r.TrainSeconds, r.Method+"-train-s")
			}
		}
	}
}

func BenchmarkTable6_ModelDetails_IMDB(b *testing.B)   { benchmarkTable6(b, "imdb") }
func BenchmarkTable6_ModelDetails_STATS(b *testing.B)  { benchmarkTable6(b, "stats") }
func BenchmarkTable6_ModelDetails_AEOLUS(b *testing.B) { benchmarkTable6(b, "aeolus") }

// --- Figure 5: end-to-end latency per estimator ---

func benchmarkFigure5(b *testing.B, dataset string) {
	env := benchEnv(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := env.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.P50, r.Method+"-p50-ms")
				b.ReportMetric(r.P99, r.Method+"-p99-ms")
			}
		}
	}
}

func BenchmarkFigure5_Latency_JOBHybrid(b *testing.B)    { benchmarkFigure5(b, "imdb") }
func BenchmarkFigure5_Latency_STATSHybrid(b *testing.B)  { benchmarkFigure5(b, "stats") }
func BenchmarkFigure5_Latency_AEOLUSOnline(b *testing.B) { benchmarkFigure5(b, "aeolus") }

// --- Figure 6a: read I/O across scales ---

func BenchmarkFigure6a_ReadIO(b *testing.B) {
	cfg := benchCfg()
	scales := []float64{0.01, 0.02, 0.04}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure6a(cfg, scales)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Blocks), fmt.Sprintf("%s@%.2g-blocks", r.Method, r.Scale))
			}
		}
	}
}

// --- Figure 6b: hash-table resizes across scales ---

func BenchmarkFigure6b_ResizeFrequency(b *testing.B) {
	cfg := benchCfg()
	scales := []float64{0.01, 0.02, 0.04}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure6b(cfg, scales)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Resizes), fmt.Sprintf("%s@%.2g", r.Method, r.Scale))
			}
		}
	}
}

// --- Figure 7: Q-error distributions over hybrid workloads ---

func benchmarkFigure7(b *testing.B, dataset string) {
	env := benchEnv(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := env.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Summary.P50, r.Method+"-p50")
				b.ReportMetric(r.Summary.P90, r.Method+"-p90")
			}
		}
	}
}

func BenchmarkFigure7_QError_JOBHybrid(b *testing.B)    { benchmarkFigure7(b, "imdb") }
func BenchmarkFigure7_QError_STATSHybrid(b *testing.B)  { benchmarkFigure7(b, "stats") }
func BenchmarkFigure7_QError_AEOLUSOnline(b *testing.B) { benchmarkFigure7(b, "aeolus") }

// --- Ablation: reader strategy crossover ---

// BenchmarkAblationReaderCrossover forces both reader strategies on a
// selective and a non-selective filter, reporting the block I/O of each —
// the crossover that motivates dynamic reader selection.
func BenchmarkAblationReaderCrossover(b *testing.B) {
	env := benchEnv(b, "stats")
	exec, err := env.Engine("bytecard")
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		label string
		sql   string
	}{
		{"selective", "SELECT COUNT(*) FROM posts WHERE score >= 60 AND view_count >= 3000"},
		{"nonselective", "SELECT COUNT(*) FROM posts WHERE score >= -2 AND view_count >= 1"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			for _, strategy := range []string{"single-stage", "multi-stage"} {
				exec.ForceReader = strategy
				res, err := exec.Run(c.sql)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(res.Metrics.IO.BlocksRead()), c.label+"-"+strategy)
				}
			}
		}
		exec.ForceReader = ""
	}
}

// --- Ablation: BN column ordering vs AVI ordering ---

// BenchmarkAblationColumnOrder compares multi-stage block I/O when the
// predicate column order comes from the BN's conditional selectivities
// versus the sketch estimator's independence assumption.
func BenchmarkAblationColumnOrder(b *testing.B) {
	env := benchEnv(b, "imdb")
	sql := "SELECT COUNT(*) FROM title WHERE season_nr >= 1 AND kind_id = 2 AND production_year >= 1990"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, method := range []string{"bytecard", "sketch"} {
			exec, err := env.Engine(method)
			if err != nil {
				b.Fatal(err)
			}
			exec.ForceReader = "multi-stage"
			res, err := exec.Run(sql)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(res.Metrics.IO.BlocksRead()), method+"-blocks")
			}
		}
	}
}

// --- Ablation: FactorJoin bucket count ---

// BenchmarkAblationBucketCount sweeps the join-bucket budget, reporting the
// geometric-mean Q-error of join estimates and the per-estimate latency.
func BenchmarkAblationBucketCount(b *testing.B) {
	ds := datagen.Toy(datagen.Config{Scale: 4, Seed: 21})
	classes := ds.Schema.JoinClasses()
	exact := func(binding, table, column string, bounds []float64) ([]float64, error) {
		t := ds.DB.Table(table)
		bk := &factorjoin.Buckets{Bounds: bounds}
		out := make([]float64, bk.Count())
		col := t.ColByName(column)
		for r := 0; r < t.NumRows(); r++ {
			if i := bk.BucketOf(col.Numeric(r)); i >= 0 {
				out[i]++
			}
		}
		return out, nil
	}
	truth := func() float64 {
		counts := map[int64]float64{}
		fact := ds.DB.Table("fact")
		for r := 0; r < fact.NumRows(); r++ {
			counts[fact.ColByName("dim_id").Value(r).I]++
		}
		var total float64
		dim := ds.DB.Table("dim")
		for r := 0; r < dim.NumRows(); r++ {
			total += counts[dim.ColByName("id").Value(r).I]
		}
		return total
	}()
	tables := []factorjoin.QueryTable{{Binding: "f", Name: "fact"}, {Binding: "d", Name: "dim"}}
	conds := []factorjoin.Cond{{LBind: "f", LCol: "dim_id", RBind: "d", RCol: "id"}}
	for _, buckets := range []int{25, 50, 100, 200} {
		b.Run(fmt.Sprintf("buckets=%d", buckets), func(b *testing.B) {
			model, err := factorjoin.Build(ds.DB, classes, buckets)
			if err != nil {
				b.Fatal(err)
			}
			var est float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est, err = model.Estimate(tables, conds, exact, factorjoin.ModeEstimate)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cardinal.QError(est, truth), "qerror")
		})
	}
}

// --- Ablation: CPD topological indexing vs pointer-tree traversal ---

// BenchmarkAblationCPDIndexing measures the paper's initContext
// optimization: the flattened topological-array inference context against a
// pointer-tree walker computing the identical result.
func BenchmarkAblationCPDIndexing(b *testing.B) {
	ds := datagen.AEOLUS(datagen.Config{Scale: 0.02, Seed: 23})
	t := ds.DB.Table("ad_events")
	cols := []string{"event_type", "duration", "cost", "event_date", "user_id"}
	data := make([][]float64, len(cols))
	for i, c := range cols {
		data[i] = t.ColByName(c).NumericAll()
	}
	model, err := bn.Train(bn.TrainConfig{Table: "ad_events", ColNames: cols, Sample: data})
	if err != nil {
		b.Fatal(err)
	}
	cons := expr.NewConstraint("event_type")
	cons.Add(expr.OpEq, 1, true)
	weights := make([][]float64, len(model.Cols))
	w, err := model.WeightsFor("event_type", cons)
	if err != nil {
		b.Fatal(err)
	}
	weights[model.ColIndex("event_type")] = w
	b.Run("topological-array", func(b *testing.B) {
		ctx, err := model.NewContext()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Prob(weights)
		}
	})
	b.Run("pointer-tree", func(b *testing.B) {
		tw, err := model.NewTreeWalker()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tw.Prob(weights)
		}
	})
}

// --- Ablation: hash-table presizing ---

// BenchmarkAblationHashPresize runs one aggregation with RBX presizing,
// with the cached-capacity heuristic, and cold, reporting resize counts.
func BenchmarkAblationHashPresize(b *testing.B) {
	env := benchEnv(b, "aeolus")
	sql := "SELECT ad_events.event_type, ad_events.duration, COUNT(*) FROM ad_events GROUP BY ad_events.event_type, ad_events.duration"
	exec, err := env.Engine("bytecard")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name    string
		presize bool
		cap     int
	}{
		{"rbx-presize", true, 0},
		{"cached-size", false, 4096},
		{"cold-start", false, 16},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range modes {
			exec.DisableNDVPresize = !m.presize
			exec.AggCapacity = m.cap
			res, err := exec.Run(sql)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(res.Metrics.HashResizes), m.name+"-resizes")
			}
		}
	}
	exec.DisableNDVPresize = false
	exec.AggCapacity = 0
}

// --- Ablation: RBX calibration on high-NDV columns ---

// BenchmarkAblationRBXCalibration compares the base RBX model against a
// fine-tuned copy on an exceptionally high-NDV column.
func BenchmarkAblationRBXCalibration(b *testing.B) {
	model, err := rbx.Train(rbx.TrainConfig{Columns: 200, Epochs: 8, MaxPop: 30000, Seed: 31})
	if err != nil {
		b.Fatal(err)
	}
	// High-NDV column at a low sampling rate.
	mkProfile := func(seed int64) (sample.Profile, float64) {
		n := 40000
		vals := make([]types.Datum, 0, n/50)
		distinct := map[int64]bool{}
		for i := 0; i < n; i++ {
			v := int64(i)*3 + seed
			distinct[v] = true
			if i%50 == int(seed)%50 {
				vals = append(vals, types.Int(v))
			}
		}
		return sample.ProfileOfValues(vals, int64(n)), float64(len(distinct))
	}
	var profiles []sample.Profile
	var truths []float64
	for s := int64(0); s < 4; s++ {
		p, tr := mkProfile(s)
		profiles = append(profiles, p)
		truths = append(truths, tr)
	}
	testP, testTruth := mkProfile(99)
	base := cardinal.QError(model.EstimateNDV(testP), testTruth)
	if err := model.FineTune("t.high_ndv", profiles, truths, rbx.FineTuneConfig{Epochs: 20, Seed: 32}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calibrated := cardinal.QError(model.EstimateNDVForColumn("t.high_ndv", testP), testTruth)
		if i == b.N-1 {
			b.ReportMetric(base, "base-qerror")
			b.ReportMetric(calibrated, "calibrated-qerror")
		}
	}
}

// --- Micro-benchmarks for the hot inference paths ---

func BenchmarkMicroBNSelectivity(b *testing.B) {
	env := benchEnv(b, "imdb")
	ctxs, ok := env.Infer.BNContexts("title")
	if !ok {
		b.Fatal("no BN for title")
	}
	cons := expr.NewConstraint("production_year")
	cons.Add(expr.OpGe, 2000, true)
	consts := []expr.Constraint{cons}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctxs[0].SelectivityConj(consts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroJoinEstimate(b *testing.B) {
	env := benchEnv(b, "imdb")
	exec, err := env.Engine("bytecard")
	if err != nil {
		b.Fatal(err)
	}
	q, err := exec.Analyze(sqlparse.MustParse(
		"SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id AND t.production_year > 2000"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.ByteCard.EstimateJoin(q.Tables, q.Joins)
	}
}

func BenchmarkMicroRBXEstimate(b *testing.B) {
	env := benchEnv(b, "imdb")
	model := env.Infer.RBX()
	if model == nil {
		b.Fatal("no RBX model")
	}
	vals := make([]types.Datum, 1000)
	for i := range vals {
		vals[i] = types.Int(int64(i % 313))
	}
	p := sample.ProfileOfValues(vals, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.EstimateNDV(p)
	}
}

func BenchmarkMicroQueryExecution(b *testing.B) {
	env := benchEnv(b, "imdb")
	exec, err := env.Engine("bytecard")
	if err != nil {
		b.Fatal(err)
	}
	sql := "SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id AND t.production_year > 2005"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: sideways information passing ---

// BenchmarkAblationSIP measures the block I/O and latency effect of SIP on
// a join whose intermediate key set is small.
func BenchmarkAblationSIP(b *testing.B) {
	env := benchEnv(b, "stats")
	exec, err := env.Engine("bytecard")
	if err != nil {
		b.Fatal(err)
	}
	sql := "SELECT COUNT(*) FROM users, comments WHERE comments.user_id = users.id AND users.reputation >= 40000 AND comments.score >= 2"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.DisableSIP = false
		on, err := exec.Run(sql)
		if err != nil {
			b.Fatal(err)
		}
		exec.DisableSIP = true
		off, err := exec.Run(sql)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(on.Metrics.IO.BlocksRead()), "sip-blocks")
			b.ReportMetric(float64(off.Metrics.IO.BlocksRead()), "nosip-blocks")
			b.ReportMetric(float64(on.Metrics.SIPPruned), "rows-pruned")
		}
	}
	exec.DisableSIP = false
}
